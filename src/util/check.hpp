// Tiered precondition / invariant checking for librdt.
//
// Four tiers, from caller-facing to paranoid:
//  * RDT_REQUIRE(expr, msg) — validates arguments at public API boundaries;
//    throws std::invalid_argument so callers can react. Always on.
//  * RDT_ASSERT(expr) — guards internal invariants and throws
//    std::logic_error: a failure indicates a bug in librdt itself, never bad
//    user input. Always on.
//  * RDT_CHECK(expr, msg) — cheap contract checks at mutation points (index
//    bounds, interval ordering, piggyback vector sizes). Always on, O(1) or
//    O(n) in the touched data; throws rdt::contract_violation (a
//    std::logic_error) with the message.
//  * RDT_AUDIT(expr, msg) — expensive cross-validation (R-graph/zigzag
//    closure agreement, TDV monotonicity per delivery, no-orphan
//    postconditions). Compiled to a no-op unless the build defines
//    RDT_AUDITS (cmake -DRDT_AUDITS=ON); when enabled a failure throws
//    rdt::audit_failure. The guarded expression is still type-checked in
//    every build so audit code cannot bit-rot.
//
// Audit-only blocks (recomputations too large for a single expression) are
// written as `if constexpr (rdt::kAuditsEnabled) { ... }` so both branches
// always compile and the disabled one folds away.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace rdt {

// Thrown by RDT_CHECK: a cheap always-on contract at a mutation point was
// violated — a bug in librdt or in code mutating its state.
class contract_violation : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

// Thrown by RDT_AUDIT (only in -DRDT_AUDITS=ON builds): an expensive
// cross-validation of independently computed results disagreed.
class audit_failure : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

#ifdef RDT_AUDITS
inline constexpr bool kAuditsEnabled = true;
#else
inline constexpr bool kAuditsEnabled = false;
#endif

// Runtime query, e.g. for tests that must skip when audits are compiled out.
constexpr bool audits_enabled() { return kAuditsEnabled; }

namespace detail {

[[noreturn]] inline void throw_require(const char* expr, const char* file, int line,
                                       const std::string& msg) {
  std::ostringstream os;
  os << "precondition violated: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::invalid_argument(os.str());
}

[[noreturn]] inline void throw_assert(const char* expr, const char* file, int line) {
  std::ostringstream os;
  os << "internal invariant violated: (" << expr << ") at " << file << ':' << line
     << " — this is a bug in librdt, please report it";
  throw std::logic_error(os.str());
}

[[noreturn]] inline void throw_check(const char* expr, const char* file, int line,
                                     const std::string& msg) {
  std::ostringstream os;
  os << "contract violated: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  os << " — this is a bug in librdt, please report it";
  throw contract_violation(os.str());
}

[[noreturn]] inline void throw_audit(const char* expr, const char* file, int line,
                                     const std::string& msg) {
  std::ostringstream os;
  os << "audit failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  os << " — independently computed results disagree; this is a bug in librdt";
  throw audit_failure(os.str());
}

}  // namespace detail

}  // namespace rdt

#define RDT_REQUIRE(expr, msg)                                              \
  do {                                                                      \
    if (!(expr)) ::rdt::detail::throw_require(#expr, __FILE__, __LINE__, (msg)); \
  } while (false)

#define RDT_ASSERT(expr)                                                    \
  do {                                                                      \
    if (!(expr)) ::rdt::detail::throw_assert(#expr, __FILE__, __LINE__);    \
  } while (false)

#define RDT_CHECK(expr, msg)                                                \
  do {                                                                      \
    if (!(expr)) ::rdt::detail::throw_check(#expr, __FILE__, __LINE__, (msg)); \
  } while (false)

#define RDT_AUDIT(expr, msg)                                                \
  do {                                                                      \
    if constexpr (::rdt::kAuditsEnabled) {                                  \
      if (!(expr)) ::rdt::detail::throw_audit(#expr, __FILE__, __LINE__, (msg)); \
    }                                                                       \
  } while (false)
