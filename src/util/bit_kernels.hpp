// Word-level bitset kernels behind BitVector / BitSpan / BitMatrix.
//
// Three implementations of every kernel:
//  * bitkern::scalar — one word per iteration, no unrolling. The reference
//    every other implementation must match bit for bit (enforced by
//    tests/bit_kernels_test.cpp).
//  * bitkern::portable — 4x-unrolled word loops; the default dispatch target
//    on every build.
//  * AVX2 (bit_kernels_avx2.cpp, compiled only under -DRDT_SIMD=ON with
//    -mavx2 on that one translation unit) — 256-bit unaligned loads/stores,
//    selected at runtime iff the CPU reports AVX2.
//
// The public entry points (bitkern::or_into etc.) inline a short-block
// scalar fast path — n <= kInlineWords words covers every per-process row at
// realistic process counts, where a function-pointer dispatch would cost
// more than the OR itself — and defer longer blocks through a dispatch table
// resolved once on first use.
#pragma once

#include <cstddef>
#include <cstdint>

namespace rdt::bitkern {

// Function-pointer table for the long-block paths. The short-block paths
// are inlined at the call site below and never dispatch.
struct Kernels {
  void (*or_into)(std::uint64_t* dst, const std::uint64_t* src, std::size_t n);
  bool (*or_into_changed)(std::uint64_t* dst, const std::uint64_t* src,
                          std::size_t n);
  void (*and_into)(std::uint64_t* dst, const std::uint64_t* src,
                   std::size_t n);
  bool (*equal)(const std::uint64_t* a, const std::uint64_t* b,
                std::size_t n);
  std::size_t (*popcount)(const std::uint64_t* p, std::size_t n);
  bool (*any)(const std::uint64_t* p, std::size_t n);
  std::size_t (*first_nonzero)(const std::uint64_t* p, std::size_t n);
  const char* name;
};

// Table picked on first use: the AVX2 kernels when the build compiled them
// in (-DRDT_SIMD=ON) and the CPU reports AVX2, the portable table otherwise.
const Kernels& active();

// The portable 4x-unrolled table — always available; dispatch fallback and
// an explicit test target.
const Kernels& portable_kernels();

// The AVX2 table, or nullptr when the build did not compile it in or the
// CPU lacks AVX2. Tests use this to cover the SIMD path explicitly instead
// of trusting whatever active() happened to resolve to.
const Kernels* simd_kernels();

// Reference kernels: one word per iteration, nothing clever beyond
// single-word popcount. Also the inlined short-block fast path.
namespace scalar {

inline void or_into(std::uint64_t* dst, const std::uint64_t* src,
                    std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] |= src[i];
}

inline bool or_into_changed(std::uint64_t* dst, const std::uint64_t* src,
                            std::size_t n) {
  std::uint64_t diff = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t before = dst[i];
    const std::uint64_t merged = before | src[i];
    diff |= before ^ merged;
    dst[i] = merged;
  }
  return diff != 0;
}

inline void and_into(std::uint64_t* dst, const std::uint64_t* src,
                     std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] &= src[i];
}

inline bool equal(const std::uint64_t* a, const std::uint64_t* b,
                  std::size_t n) {
  for (std::size_t i = 0; i < n; ++i)
    if (a[i] != b[i]) return false;
  return true;
}

inline std::size_t popcount(const std::uint64_t* p, std::size_t n) {
  std::size_t total = 0;
  for (std::size_t i = 0; i < n; ++i)
    total += static_cast<std::size_t>(__builtin_popcountll(p[i]));
  return total;
}

inline bool any(const std::uint64_t* p, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i)
    if (p[i]) return true;
  return false;
}

// Index of the first nonzero word, or n when all words are zero.
inline std::size_t first_nonzero(const std::uint64_t* p, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i)
    if (p[i]) return i;
  return n;
}

}  // namespace scalar

// Default dispatch target: 4x-unrolled word loops (definitions in
// bit_kernels.cpp). Exposed so the equivalence tests can exercise this
// implementation even when dispatch selects AVX2.
namespace portable {

void or_into(std::uint64_t* dst, const std::uint64_t* src, std::size_t n);
bool or_into_changed(std::uint64_t* dst, const std::uint64_t* src,
                     std::size_t n);
void and_into(std::uint64_t* dst, const std::uint64_t* src, std::size_t n);
bool equal(const std::uint64_t* a, const std::uint64_t* b, std::size_t n);
std::size_t popcount(const std::uint64_t* p, std::size_t n);
bool any(const std::uint64_t* p, std::size_t n);
std::size_t first_nonzero(const std::uint64_t* p, std::size_t n);

}  // namespace portable

namespace detail {
// Defined in bit_kernels_avx2.cpp; that TU exists only under -DRDT_SIMD=ON,
// and the dispatcher references this symbol only when RDT_SIMD_AVX2 is
// defined. Returns nullptr if the TU was somehow built without -mavx2.
const Kernels* avx2_kernels_impl();
}  // namespace detail

// Blocks at or under this many words run the scalar loop inline at the call
// site: per-process bitsets are one word for up to 64 processes, and the
// dispatch indirection would dominate the work.
inline constexpr std::size_t kInlineWords = 4;

inline void or_into(std::uint64_t* dst, const std::uint64_t* src,
                    std::size_t n) {
  if (n <= kInlineWords) {
    scalar::or_into(dst, src, n);
    return;
  }
  active().or_into(dst, src, n);
}

inline bool or_into_changed(std::uint64_t* dst, const std::uint64_t* src,
                            std::size_t n) {
  if (n <= kInlineWords) return scalar::or_into_changed(dst, src, n);
  return active().or_into_changed(dst, src, n);
}

inline void and_into(std::uint64_t* dst, const std::uint64_t* src,
                     std::size_t n) {
  if (n <= kInlineWords) {
    scalar::and_into(dst, src, n);
    return;
  }
  active().and_into(dst, src, n);
}

inline bool equal(const std::uint64_t* a, const std::uint64_t* b,
                  std::size_t n) {
  if (n <= kInlineWords) return scalar::equal(a, b, n);
  return active().equal(a, b, n);
}

inline std::size_t popcount(const std::uint64_t* p, std::size_t n) {
  if (n <= kInlineWords) return scalar::popcount(p, n);
  return active().popcount(p, n);
}

inline bool any(const std::uint64_t* p, std::size_t n) {
  if (n <= kInlineWords) return scalar::any(p, n);
  return active().any(p, n);
}

inline std::size_t first_nonzero(const std::uint64_t* p, std::size_t n) {
  if (n <= kInlineWords) return scalar::first_nonzero(p, n);
  return active().first_nonzero(p, n);
}

// Index of the first set bit at or after `from` in a block of `size` bits,
// or `size` when there is none. Safe for any `from` including from >= size
// (returns size without touching memory — callers probe one past the end
// when iterating set bits, and empty spans carry a null word pointer).
std::size_t find_next(const std::uint64_t* words, std::size_t size,
                      std::size_t from);

}  // namespace rdt::bitkern
