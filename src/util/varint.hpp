// Bounded LEB128 varint primitives shared by every wire-facing layer: the
// serve frame format (serve/wire.cpp) and the piggyback codec layer
// (protocols/codec.cpp) encode with the same bytes and reject the same
// malformed inputs.
//
// Contract (mirrors the serve wire format that first grew these helpers):
//  * `put` appends the canonical little-endian base-128 encoding.
//  * `get` decodes bounded to `end`, throwing std::invalid_argument on
//    truncation, on encodings longer than 10 bytes, and on 10-byte
//    encodings whose final byte overflows 64 bits. Errors are prefixed
//    "<domain>: byte N: ..." so each wire layer keeps its own vocabulary,
//    and `offset` is only advanced past bytes that were consumed (callers
//    that need offset-untouched-on-throw snapshot it before a composite
//    parse and restore in their catch).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace rdt::varint {

[[noreturn]] inline void fail(const char* domain, std::size_t offset,
                              const std::string& what) {
  std::ostringstream os;
  os << domain << ": byte " << offset << ": " << what;
  throw std::invalid_argument(os.str());
}

inline void put(std::uint64_t v, std::vector<std::uint8_t>& out) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80u);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

// LEB128 decode, bounded to `end`. Rejects truncation, encodings longer
// than 10 bytes, and 10-byte encodings whose final byte overflows 64 bits.
inline std::uint64_t get(std::span<const std::uint8_t> bytes,
                         std::size_t& offset, std::size_t end,
                         const char* domain, const char* what) {
  std::uint64_t v = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    if (offset >= end)
      fail(domain, offset, std::string("truncated varint while reading ") + what);
    const std::uint8_t b = bytes[offset++];
    if (shift == 63 && (b & 0x7Eu) != 0)
      fail(domain, offset - 1, std::string(what) + " varint overflows 64 bits");
    v |= static_cast<std::uint64_t>(b & 0x7Fu) << shift;
    if ((b & 0x80u) == 0) return v;
  }
  fail(domain, offset - 1, std::string(what) + " varint runs past 10 bytes");
}

}  // namespace rdt::varint
