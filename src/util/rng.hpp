// Deterministic random number generation for simulations and property tests.
//
// All stochastic behaviour in librdt flows through Rng so that every
// experiment is reproducible from a single 64-bit seed. The engine is
// xoshiro256**, seeded through splitmix64 as its authors recommend; it is
// small, fast, and — unlike std::mt19937 seeded from a single int — has no
// weak low-entropy start-up transient to worry about in statistics.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace rdt {

class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  // UniformRandomBitGenerator interface (usable with <random> distributions).
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }
  result_type operator()() { return next(); }

  std::uint64_t next();

  // Uniform integer in [0, bound) using Lemire's unbiased multiply-shift.
  std::uint64_t below(std::uint64_t bound);
  // Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  // Uniform double in [0, 1).
  double uniform();
  // Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  // True with probability p.
  bool bernoulli(double p);
  // Exponentially distributed with the given mean (rate = 1/mean).
  double exponential(double mean);
  // Uniformly chosen element index of a non-empty container size.
  std::size_t index(std::size_t size);

  // Derive an independent child stream (for per-process / per-run streams).
  Rng split();

  // Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = below(i);
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

 private:
  std::array<std::uint64_t, 4> state_{};
};

}  // namespace rdt
