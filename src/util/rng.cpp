#include "util/rng.hpp"

#include <cmath>

#include "util/check.hpp"

namespace rdt {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) {
  RDT_REQUIRE(bound > 0, "bound must be positive");
  // Lemire's nearly-divisionless unbiased method.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  RDT_REQUIRE(lo <= hi, "empty range");
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  // span == 0 means the full 64-bit range; next() is already uniform there.
  if (span == 0) return static_cast<std::int64_t>(next());
  return lo + static_cast<std::int64_t>(below(span));
}

double Rng::uniform() {
  // 53 random bits mapped to [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  RDT_REQUIRE(lo <= hi, "empty range");
  return lo + (hi - lo) * uniform();
}

bool Rng::bernoulli(double p) {
  RDT_REQUIRE(p >= 0.0 && p <= 1.0, "probability out of range");
  return uniform() < p;
}

double Rng::exponential(double mean) {
  RDT_REQUIRE(mean > 0.0, "mean must be positive");
  // Inverse CDF; 1 - uniform() is in (0, 1] so the log is finite.
  return -mean * std::log(1.0 - uniform());
}

std::size_t Rng::index(std::size_t size) {
  RDT_REQUIRE(size > 0, "cannot pick from an empty container");
  return static_cast<std::size_t>(below(size));
}

Rng Rng::split() { return Rng(next() ^ 0xd1b54a32d192ed03ULL); }

}  // namespace rdt
