#include "util/bit_kernels.hpp"

namespace rdt::bitkern {

namespace portable {

void or_into(std::uint64_t* dst, const std::uint64_t* src, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    dst[i] |= src[i];
    dst[i + 1] |= src[i + 1];
    dst[i + 2] |= src[i + 2];
    dst[i + 3] |= src[i + 3];
  }
  for (; i < n; ++i) dst[i] |= src[i];
}

bool or_into_changed(std::uint64_t* dst, const std::uint64_t* src,
                     std::size_t n) {
  // Accumulate a difference mask instead of branching per word; one test at
  // the end decides `changed`.
  std::uint64_t diff = 0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const std::uint64_t b0 = dst[i], b1 = dst[i + 1];
    const std::uint64_t b2 = dst[i + 2], b3 = dst[i + 3];
    const std::uint64_t m0 = b0 | src[i], m1 = b1 | src[i + 1];
    const std::uint64_t m2 = b2 | src[i + 2], m3 = b3 | src[i + 3];
    diff |= (b0 ^ m0) | (b1 ^ m1) | (b2 ^ m2) | (b3 ^ m3);
    dst[i] = m0;
    dst[i + 1] = m1;
    dst[i + 2] = m2;
    dst[i + 3] = m3;
  }
  for (; i < n; ++i) {
    const std::uint64_t before = dst[i];
    const std::uint64_t merged = before | src[i];
    diff |= before ^ merged;
    dst[i] = merged;
  }
  return diff != 0;
}

void and_into(std::uint64_t* dst, const std::uint64_t* src, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    dst[i] &= src[i];
    dst[i + 1] &= src[i + 1];
    dst[i + 2] &= src[i + 2];
    dst[i + 3] &= src[i + 3];
  }
  for (; i < n; ++i) dst[i] &= src[i];
}

bool equal(const std::uint64_t* a, const std::uint64_t* b, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const std::uint64_t acc = (a[i] ^ b[i]) | (a[i + 1] ^ b[i + 1]) |
                              (a[i + 2] ^ b[i + 2]) | (a[i + 3] ^ b[i + 3]);
    if (acc != 0) return false;
  }
  for (; i < n; ++i)
    if (a[i] != b[i]) return false;
  return true;
}

std::size_t popcount(const std::uint64_t* p, std::size_t n) {
  // Four independent accumulators so the popcnt chain is not serialized on
  // one register.
  std::size_t c0 = 0, c1 = 0, c2 = 0, c3 = 0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    c0 += static_cast<std::size_t>(__builtin_popcountll(p[i]));
    c1 += static_cast<std::size_t>(__builtin_popcountll(p[i + 1]));
    c2 += static_cast<std::size_t>(__builtin_popcountll(p[i + 2]));
    c3 += static_cast<std::size_t>(__builtin_popcountll(p[i + 3]));
  }
  for (; i < n; ++i) c0 += static_cast<std::size_t>(__builtin_popcountll(p[i]));
  return c0 + c1 + c2 + c3;
}

bool any(const std::uint64_t* p, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    if ((p[i] | p[i + 1] | p[i + 2] | p[i + 3]) != 0) return true;
  }
  for (; i < n; ++i)
    if (p[i]) return true;
  return false;
}

std::size_t first_nonzero(const std::uint64_t* p, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    if ((p[i] | p[i + 1] | p[i + 2] | p[i + 3]) != 0) {
      if (p[i]) return i;
      if (p[i + 1]) return i + 1;
      if (p[i + 2]) return i + 2;
      return i + 3;
    }
  }
  for (; i < n; ++i)
    if (p[i]) return i;
  return n;
}

}  // namespace portable

const Kernels& portable_kernels() {
  static const Kernels k = {portable::or_into,  portable::or_into_changed,
                            portable::and_into, portable::equal,
                            portable::popcount, portable::any,
                            portable::first_nonzero, "portable"};
  return k;
}

const Kernels* simd_kernels() {
#ifdef RDT_SIMD_AVX2
  if (__builtin_cpu_supports("avx2")) return detail::avx2_kernels_impl();
#endif
  return nullptr;
}

const Kernels& active() {
  static const Kernels& k = []() -> const Kernels& {
    if (const Kernels* simd = simd_kernels()) return *simd;
    return portable_kernels();
  }();
  return k;
}

std::size_t find_next(const std::uint64_t* words, std::size_t size,
                      std::size_t from) {
  // Explicit bound check: from >= size covers empty spans (null word
  // pointer) and the one-past-the-end probe — neither may read memory.
  if (from >= size) return size;
  const std::size_t num_words = (size + 63) / 64;
  std::size_t w = from >> 6;
  const std::uint64_t head = words[w] & (~0ULL << (from & 63));
  if (head != 0) {
    const std::size_t bit =
        (w << 6) + static_cast<std::size_t>(__builtin_ctzll(head));
    return bit < size ? bit : size;
  }
  const std::size_t remaining = num_words - w - 1;
  const std::size_t idx = first_nonzero(words + w + 1, remaining);
  if (idx == remaining) return size;
  w += 1 + idx;
  const std::size_t bit =
      (w << 6) + static_cast<std::size_t>(__builtin_ctzll(words[w]));
  return bit < size ? bit : size;
}

}  // namespace rdt::bitkern
