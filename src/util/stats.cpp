#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace rdt {

Summary summarize(const std::vector<double>& samples) {
  RunningStats acc;
  for (double x : samples) acc.add(x);
  return acc.summary();
}

double percentile(const std::vector<double>& sorted, double q) {
  RDT_REQUIRE(q >= 0.0 && q <= 100.0, "percentile must lie in [0, 100]");
  if (sorted.empty()) return 0.0;
  RDT_REQUIRE(sorted.front() <= sorted.back(),
              "percentile input must be sorted ascending");
  RDT_AUDIT(std::is_sorted(sorted.begin(), sorted.end()),
            "percentile input must be sorted ascending");
  // Linear interpolation between closest ranks: rank (n-1) * q / 100.
  const double rank =
      static_cast<double>(sorted.size() - 1) * (q / 100.0);
  const auto lo = static_cast<std::size_t>(rank);
  if (lo + 1 >= sorted.size()) return sorted.back();
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[lo + 1] - sorted[lo]);
}

PercentileSummary percentile_summary(std::vector<double>& samples) {
  PercentileSummary s;
  if (samples.empty()) return s;
  std::sort(samples.begin(), samples.end());
  s.count = samples.size();
  s.p50 = percentile(samples, 50.0);
  s.p90 = percentile(samples, 90.0);
  s.p99 = percentile(samples, 99.0);
  s.min = samples.front();
  s.max = samples.back();
  return s;
}

void RunningStats::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

Summary RunningStats::summary() const {
  Summary s;
  s.count = count_;
  s.mean = mean_;
  s.stddev = stddev();
  s.ci95 = count_ > 0 ? 1.96 * s.stddev / std::sqrt(static_cast<double>(count_)) : 0.0;
  s.min = min_;
  s.max = max_;
  return s;
}

}  // namespace rdt
