#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace rdt {

Summary summarize(const std::vector<double>& samples) {
  RunningStats acc;
  for (double x : samples) acc.add(x);
  return acc.summary();
}

void RunningStats::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

Summary RunningStats::summary() const {
  Summary s;
  s.count = count_;
  s.mean = mean_;
  s.stddev = stddev();
  s.ci95 = count_ > 0 ? 1.96 * s.stddev / std::sqrt(static_cast<double>(count_)) : 0.0;
  s.min = min_;
  s.max = max_;
  return s;
}

}  // namespace rdt
