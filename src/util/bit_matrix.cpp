#include "util/bit_matrix.hpp"

#include <utility>

namespace rdt {

namespace bitdetail {

std::size_t find_next(const std::uint64_t* words, std::size_t size,
                      std::size_t from) {
  if (from >= size) return size;
  const std::size_t num_words = words_for(size);
  std::size_t w = from >> 6;
  std::uint64_t word = words[w] & (~0ULL << (from & 63));
  while (true) {
    if (word != 0) {
      const std::size_t bit =
          (w << 6) + static_cast<std::size_t>(__builtin_ctzll(word));
      return bit < size ? bit : size;
    }
    if (++w >= num_words) return size;
    word = words[w];
  }
}

}  // namespace bitdetail

void BitMatrix::close_transitively() {
  RDT_REQUIRE(rows_ == cols_, "transitive closure requires a square matrix");
  set_diagonal(true);
  // Warshall: if row r can reach k, it can reach everything k reaches.
  for (std::size_t k = 0; k < rows_; ++k) {
    const ConstBitSpan via = std::as_const(*this).row(k);
    for (std::size_t r = 0; r < rows_; ++r) {
      if (r != k && get(r, k)) row(r).or_with(via);
    }
  }
}

}  // namespace rdt
