#include "util/bit_matrix.hpp"

namespace rdt {

std::size_t BitVector::find_next(std::size_t from) const {
  if (from >= size_) return size_;
  std::size_t w = from >> 6;
  std::uint64_t word = words_[w] & (~0ULL << (from & 63));
  while (true) {
    if (word != 0) {
      const std::size_t bit = (w << 6) + static_cast<std::size_t>(__builtin_ctzll(word));
      return bit < size_ ? bit : size_;
    }
    if (++w >= words_.size()) return size_;
    word = words_[w];
  }
}

void BitMatrix::close_transitively() {
  RDT_REQUIRE(rows_ == cols_, "transitive closure requires a square matrix");
  set_diagonal(true);
  // Warshall: if row r can reach k, it can reach everything k reaches.
  for (std::size_t k = 0; k < rows_; ++k) {
    const BitVector& via = data_[k];
    for (std::size_t r = 0; r < rows_; ++r) {
      if (r != k && data_[r].get(k)) data_[r].or_with(via);
    }
  }
}

}  // namespace rdt
