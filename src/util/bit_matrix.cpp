#include "util/bit_matrix.hpp"

#include <utility>

namespace rdt {

void BitMatrix::close_transitively() {
  RDT_REQUIRE(rows_ == cols_, "transitive closure requires a square matrix");
  set_diagonal(true);
  // Warshall: if row r can reach k, it can reach everything k reaches.
  for (std::size_t k = 0; k < rows_; ++k) {
    const ConstBitSpan via = std::as_const(*this).row(k);
    for (std::size_t r = 0; r < rows_; ++r) {
      if (r != k && get(r, k)) row(r).or_with(via);
    }
  }
}

}  // namespace rdt
