// Allocation accounting helpers for the retention layer.
//
// The engine's O(live frontier) memory claim is gated in CI by
// bench_longrun, which needs a number it can trust more than VmRSS (the
// allocator keeps freed pages for a while). These helpers sum the
// *capacity* footprint of the containers the engine actually owns — what
// the engine would free if destroyed — so the resident-bytes curve tracks
// eviction exactly even when the OS-visible RSS plateaus at its high-water
// mark. The numbers are container payloads only (no allocator headers, no
// malloc slack): a consistent, comparable accounting, not a heap profiler.
#pragma once

#include <cstddef>
#include <vector>

namespace rdt::mem {

// Heap payload of one vector: capacity, not size — unused capacity is
// resident memory too, which is exactly what a capacity cap must see.
template <typename T>
std::size_t vec_bytes(const std::vector<T>& v) {
  return v.capacity() * sizeof(T);
}

// Heap payload of a vector of vectors: the outer spine plus every inner
// buffer (the inner elements must themselves be heap-free).
template <typename T>
std::size_t nested_vec_bytes(const std::vector<std::vector<T>>& v) {
  std::size_t bytes = vec_bytes(v);
  for (const auto& inner : v) bytes += vec_bytes(inner);
  return bytes;
}

}  // namespace rdt::mem
