// Small descriptive-statistics helpers used by the benchmark harnesses to
// aggregate per-seed simulation results (mean, stddev, 95% confidence
// half-width under a normal approximation).
#pragma once

#include <cstddef>
#include <vector>

namespace rdt {

struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;   // sample standard deviation
  double ci95 = 0.0;     // 95% confidence half-width (1.96 * stderr)
  double min = 0.0;
  double max = 0.0;
};

// Computes a Summary over the samples; an empty input yields all zeros.
Summary summarize(const std::vector<double>& samples);

// Welford-style online accumulator for streaming settings.
class RunningStats {
 public:
  void add(double x);
  std::size_t count() const { return count_; }
  double mean() const { return mean_; }
  double variance() const;  // sample variance, 0 if fewer than 2 samples
  double stddev() const;
  Summary summary() const;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace rdt
