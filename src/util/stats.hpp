// Small descriptive-statistics helpers used by the benchmark harnesses to
// aggregate per-seed simulation results (mean, stddev, 95% confidence
// half-width under a normal approximation).
#pragma once

#include <cstddef>
#include <vector>

namespace rdt {

struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;   // sample standard deviation
  double ci95 = 0.0;     // 95% confidence half-width (1.96 * stderr)
  double min = 0.0;
  double max = 0.0;
};

// Computes a Summary over the samples; an empty input yields all zeros.
Summary summarize(const std::vector<double>& samples);

// The q-th percentile (q in [0, 100]) of an ascending-sorted sample, with
// linear interpolation between the two closest ranks (the rank is
// (count - 1) * q / 100, so p0 = min, p100 = max, and a single-element
// sample answers that element at every q). Empty input yields 0. Throws
// std::invalid_argument when q is outside [0, 100] or the sample is not
// sorted ascending (checked at audit tier for large inputs, always for the
// endpoints).
double percentile(const std::vector<double>& sorted, double q);

// Latency-report bundle over one sample set. percentile_summary sorts the
// sample in place (the caller's vector doubles as the scratch buffer) and
// reads the standard serving percentiles off the sorted data.
struct PercentileSummary {
  std::size_t count = 0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  double min = 0.0;
  double max = 0.0;
};
PercentileSummary percentile_summary(std::vector<double>& samples);

// Partition of [0, items) into `buckets` contiguous ranges for per-phase
// rate reporting. Every bucket holds items/buckets entries except the LAST,
// which also absorbs the remainder — so no item is ever dropped from an
// aggregate (a ceil-division plan instead leaves the last bucket short and
// any uniform per-bucket divisor silently wrong). With items < buckets the
// base is zero and everything lands in the last bucket.
struct BucketPlan {
  std::size_t items = 0;
  std::size_t buckets = 1;

  BucketPlan(std::size_t items_, std::size_t buckets_)
      : items(items_), buckets(buckets_ == 0 ? 1 : buckets_) {}

  std::size_t base() const { return items / buckets; }

  // Bucket of item i (valid for i < items).
  std::size_t bucket_of(std::size_t i) const {
    const std::size_t b = base();
    if (b == 0) return buckets - 1;
    return i / b < buckets ? i / b : buckets - 1;
  }

  // Number of items in bucket b (valid for b < buckets).
  std::size_t size_of(std::size_t b) const {
    if (b + 1 < buckets) return base();
    return items - base() * (buckets - 1);
  }

  // True when item i is the last item of its bucket.
  bool closes_bucket(std::size_t i) const {
    return i + 1 == items || bucket_of(i + 1) != bucket_of(i);
  }
};

// Welford-style online accumulator for streaming settings.
class RunningStats {
 public:
  void add(double x);
  std::size_t count() const { return count_; }
  double mean() const { return mean_; }
  double variance() const;  // sample variance, 0 if fewer than 2 samples
  double stddev() const;
  Summary summary() const;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace rdt
