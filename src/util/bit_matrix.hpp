// Dense bit vectors and bit matrices.
//
// These back the boolean control structures the checkpointing protocols
// piggyback on messages (the `causal` n×n matrix, the `simple` and `sent_to`
// arrays) as well as the reachability closures computed on R-graphs, where a
// row-per-node bitset makes transitive closure an O(V^3 / 64) word-parallel
// sweep.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/check.hpp"

namespace rdt {

// Fixed-size vector of bits with word-parallel bulk operations.
class BitVector {
 public:
  BitVector() = default;
  explicit BitVector(std::size_t size, bool value = false)
      : size_(size), words_((size + 63) / 64, value ? ~0ULL : 0ULL) {
    trim();
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  bool get(std::size_t i) const {
    RDT_REQUIRE(i < size_, "bit index out of range");
    return (words_[i >> 6] >> (i & 63)) & 1ULL;
  }
  void set(std::size_t i, bool value = true) {
    RDT_REQUIRE(i < size_, "bit index out of range");
    const std::uint64_t mask = 1ULL << (i & 63);
    if (value)
      words_[i >> 6] |= mask;
    else
      words_[i >> 6] &= ~mask;
  }
  void reset() {
    for (auto& w : words_) w = 0;
  }
  void fill(bool value) {
    for (auto& w : words_) w = value ? ~0ULL : 0ULL;
    trim();
  }

  // *this |= other without change detection — cheaper than or_with in
  // sweeps that visit each edge exactly once and never test for a fixpoint.
  void merge(const BitVector& other) {
    RDT_REQUIRE(other.size_ == size_, "size mismatch");
    for (std::size_t w = 0; w < words_.size(); ++w) words_[w] |= other.words_[w];
  }

  // *this |= other; returns true iff any bit changed.
  bool or_with(const BitVector& other) {
    RDT_REQUIRE(other.size_ == size_, "size mismatch");
    bool changed = false;
    for (std::size_t w = 0; w < words_.size(); ++w) {
      const std::uint64_t merged = words_[w] | other.words_[w];
      changed |= merged != words_[w];
      words_[w] = merged;
    }
    return changed;
  }

  void and_with(const BitVector& other) {
    RDT_REQUIRE(other.size_ == size_, "size mismatch");
    for (std::size_t w = 0; w < words_.size(); ++w) words_[w] &= other.words_[w];
  }

  std::size_t count() const {
    std::size_t total = 0;
    for (auto w : words_) total += static_cast<std::size_t>(__builtin_popcountll(w));
    return total;
  }

  bool any() const {
    for (auto w : words_)
      if (w) return true;
    return false;
  }

  // Index of first set bit at or after `from`, or size() if none.
  std::size_t find_next(std::size_t from) const;

  friend bool operator==(const BitVector&, const BitVector&) = default;

 private:
  void trim() {
    if (size_ % 64 != 0 && !words_.empty())
      words_.back() &= (1ULL << (size_ % 64)) - 1;
  }

  std::size_t size_ = 0;
  std::vector<std::uint64_t> words_;
};

// Row-major matrix of bits. Rows are BitVector-compatible so closure
// algorithms can OR whole rows together.
class BitMatrix {
 public:
  BitMatrix() = default;
  BitMatrix(std::size_t rows, std::size_t cols, bool value = false)
      : rows_(rows), cols_(cols), data_(rows, BitVector(cols, value)) {}

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  bool get(std::size_t r, std::size_t c) const { return row(r).get(c); }
  void set(std::size_t r, std::size_t c, bool value = true) { row(r).set(c, value); }

  const BitVector& row(std::size_t r) const {
    RDT_REQUIRE(r < rows_, "row index out of range");
    return data_[r];
  }
  BitVector& row(std::size_t r) {
    RDT_REQUIRE(r < rows_, "row index out of range");
    return data_[r];
  }

  void fill(bool value) {
    for (auto& r : data_) r.fill(value);
  }

  void set_diagonal(bool value) {
    RDT_REQUIRE(rows_ == cols_, "diagonal requires a square matrix");
    for (std::size_t i = 0; i < rows_; ++i) data_[i].set(i, value);
  }

  std::size_t count() const {
    std::size_t total = 0;
    for (const auto& r : data_) total += r.count();
    return total;
  }

  // Reflexive-transitive closure of the adjacency matrix (Warshall with
  // word-parallel row OR). Requires a square matrix.
  void close_transitively();

  friend bool operator==(const BitMatrix&, const BitMatrix&) = default;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<BitVector> data_;
};

}  // namespace rdt
