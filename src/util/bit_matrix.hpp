// Dense bit vectors, bit matrices, and non-owning bit spans.
//
// These back the boolean control structures the checkpointing protocols
// piggyback on messages (the `causal` n×n matrix, the `simple` and `sent_to`
// arrays) as well as the reachability closures computed on R-graphs, where a
// row-per-node bitset makes transitive closure an O(V^3 / 64) word-parallel
// sweep.
//
// Storage model: every row (and every span) is a word-aligned block of
// 64-bit words whose tail bits beyond size() are kept zero — that invariant
// makes equality and popcount plain word operations. BitMatrix stores all
// rows contiguously (row-major, (cols+63)/64 words per row), so a matrix is
// also addressable as one flat block — the layout the replay engine's
// payload arena shares via ConstBitMatrixSpan without copying.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/bit_kernels.hpp"
#include "util/check.hpp"

namespace rdt {

namespace bitdetail {

inline std::size_t words_for(std::size_t bits) { return (bits + 63) / 64; }

// Zero the bits beyond `bits` in the block's last word.
inline void trim_tail(std::uint64_t* words, std::size_t bits) {
  if (bits % 64 != 0) words[bits / 64] &= (1ULL << (bits % 64)) - 1;
}

// True iff the bits beyond `bits` in the block's last word are all zero —
// the invariant that makes word-parallel equality and popcount exact.
inline bool tail_zero(const std::uint64_t* words, std::size_t bits) {
  if (bits % 64 == 0) return true;
  return (words[bits / 64] & ~((1ULL << (bits % 64)) - 1)) == 0;
}

inline std::size_t find_next(const std::uint64_t* words, std::size_t size,
                             std::size_t from) {
  return bitkern::find_next(words, size, from);
}

}  // namespace bitdetail

// Read-only view over a word-aligned block of bits. Cheap to copy; never
// owns storage. All producers maintain the zero-tail invariant, so equality
// and count are word-parallel.
class ConstBitSpan {
 public:
  ConstBitSpan() = default;
  ConstBitSpan(const std::uint64_t* words, std::size_t size)
      : words_(words), size_(size) {}

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  const std::uint64_t* words() const { return words_; }
  std::size_t num_words() const { return bitdetail::words_for(size_); }

  bool get(std::size_t i) const {
    RDT_REQUIRE(i < size_, "bit index out of range");
    return (words_[i >> 6] >> (i & 63)) & 1ULL;
  }

  // True iff the bits beyond size() in the last word are all zero. Always
  // expected to hold; word-parallel count/equality silently break otherwise.
  bool tail_zero() const { return empty() || bitdetail::tail_zero(words_, size_); }

  std::size_t count() const {
    RDT_AUDIT(tail_zero(), "zero-tail invariant violated before popcount");
    return bitkern::popcount(words_, num_words());
  }

  bool any() const { return bitkern::any(words_, num_words()); }

  // Index of first set bit at or after `from`, or size() if none. Accepts
  // any `from`, including from >= size() (returns size() without reading
  // past the last word).
  std::size_t find_next(std::size_t from) const {
    return bitdetail::find_next(words_, size_, from);
  }

  friend bool operator==(ConstBitSpan a, ConstBitSpan b) {
    if (a.size_ != b.size_) return false;
    RDT_AUDIT(a.tail_zero() && b.tail_zero(),
              "zero-tail invariant violated before word-parallel equality");
    return bitkern::equal(a.words_, b.words_, a.num_words());
  }

 private:
  const std::uint64_t* words_ = nullptr;
  std::size_t size_ = 0;
};

// Mutable view over a word-aligned block of bits. The view itself is a
// value; mutators are const because they write through the pointer, which
// lets arena slots hand rows out by value.
class BitSpan {
 public:
  BitSpan() = default;
  BitSpan(std::uint64_t* words, std::size_t size) : words_(words), size_(size) {}

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::uint64_t* words() const { return words_; }
  std::size_t num_words() const { return bitdetail::words_for(size_); }

  operator ConstBitSpan() const { return {words_, size_}; }  // NOLINT(*-explicit-*)

  bool get(std::size_t i) const {
    RDT_REQUIRE(i < size_, "bit index out of range");
    return (words_[i >> 6] >> (i & 63)) & 1ULL;
  }
  void set(std::size_t i, bool value = true) const {
    RDT_REQUIRE(i < size_, "bit index out of range");
    const std::uint64_t mask = 1ULL << (i & 63);
    if (value)
      words_[i >> 6] |= mask;
    else
      words_[i >> 6] &= ~mask;
  }
  void reset() const {
    for (std::size_t w = 0; w < num_words(); ++w) words_[w] = 0;
  }
  void fill(bool value) const {
    for (std::size_t w = 0; w < num_words(); ++w) words_[w] = value ? ~0ULL : 0ULL;
    bitdetail::trim_tail(words_, size_);
  }
  void assign(ConstBitSpan other) const {
    RDT_REQUIRE(other.size() == size_, "size mismatch");
    for (std::size_t w = 0; w < num_words(); ++w) words_[w] = other.words()[w];
    trim();
  }

  // *this |= other without change detection — cheaper than or_with in
  // sweeps that visit each edge exactly once and never test for a fixpoint.
  void merge(ConstBitSpan other) const {
    RDT_REQUIRE(other.size() == size_, "size mismatch");
    bitkern::or_into(words_, other.words(), num_words());
    trim();
  }

  // *this |= other; returns true iff any bit changed.
  bool or_with(ConstBitSpan other) const {
    RDT_REQUIRE(other.size() == size_, "size mismatch");
    const bool changed = bitkern::or_into_changed(words_, other.words(), num_words());
    trim();
    return changed;
  }

  void and_with(ConstBitSpan other) const {
    RDT_REQUIRE(other.size() == size_, "size mismatch");
    bitkern::and_into(words_, other.words(), num_words());
  }

  bool tail_zero() const { return ConstBitSpan(*this).tail_zero(); }
  std::size_t count() const { return ConstBitSpan(*this).count(); }
  bool any() const { return ConstBitSpan(*this).any(); }
  std::size_t find_next(std::size_t from) const {
    return bitdetail::find_next(words_, size_, from);
  }

 private:
  // Same-size sources that honor the invariant cannot set tail bits, but a
  // span over foreign storage (arena, piggyback buffer) may not — re-trim
  // after every op that ORs or copies whole words so the invariant is
  // enforced here rather than assumed of every producer.
  void trim() const {
    if (!empty()) bitdetail::trim_tail(words_, size_);
  }

 private:
  std::uint64_t* words_ = nullptr;
  std::size_t size_ = 0;
};

// Fixed-size vector of bits with word-parallel bulk operations.
class BitVector {
 public:
  BitVector() = default;
  explicit BitVector(std::size_t size, bool value = false)
      : size_(size), words_(bitdetail::words_for(size), value ? ~0ULL : 0ULL) {
    trim();
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  operator ConstBitSpan() const { return {words_.data(), size_}; }  // NOLINT(*-explicit-*)
  ConstBitSpan span() const { return {words_.data(), size_}; }
  BitSpan span() { return {words_.data(), size_}; }

  bool get(std::size_t i) const {
    RDT_REQUIRE(i < size_, "bit index out of range");
    return (words_[i >> 6] >> (i & 63)) & 1ULL;
  }
  void set(std::size_t i, bool value = true) {
    RDT_REQUIRE(i < size_, "bit index out of range");
    const std::uint64_t mask = 1ULL << (i & 63);
    if (value)
      words_[i >> 6] |= mask;
    else
      words_[i >> 6] &= ~mask;
  }
  void reset() {
    for (auto& w : words_) w = 0;
  }
  void fill(bool value) {
    for (auto& w : words_) w = value ? ~0ULL : 0ULL;
    trim();
  }

  // *this |= other without change detection — cheaper than or_with in
  // sweeps that visit each edge exactly once and never test for a fixpoint.
  void merge(ConstBitSpan other) { span().merge(other); }

  // *this |= other; returns true iff any bit changed.
  bool or_with(ConstBitSpan other) { return span().or_with(other); }

  void and_with(ConstBitSpan other) { span().and_with(other); }

  void assign(ConstBitSpan other) { span().assign(other); }

  std::size_t count() const { return span().count(); }

  bool any() const { return span().any(); }

  // Index of first set bit at or after `from`, or size() if none.
  std::size_t find_next(std::size_t from) const {
    return bitdetail::find_next(words_.data(), size_, from);
  }

  friend bool operator==(const BitVector&, const BitVector&) = default;

 private:
  void trim() {
    if (!words_.empty()) bitdetail::trim_tail(words_.data(), size_);
  }

  std::size_t size_ = 0;
  std::vector<std::uint64_t> words_;
};

// Read-only view over a block-strided bit matrix: `rows` word-aligned rows
// of `cols` bits, laid out contiguously (stride = words_for(cols)). Both
// BitMatrix and the replay payload arena produce these.
class ConstBitMatrixSpan {
 public:
  ConstBitMatrixSpan() = default;
  ConstBitMatrixSpan(const std::uint64_t* words, std::size_t rows,
                     std::size_t cols)
      : words_(words), rows_(rows), cols_(cols) {}

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t row_words() const { return bitdetail::words_for(cols_); }

  ConstBitSpan row(std::size_t r) const {
    RDT_REQUIRE(r < rows_, "row index out of range");
    return {words_ + r * row_words(), cols_};
  }
  bool get(std::size_t r, std::size_t c) const { return row(r).get(c); }

 private:
  const std::uint64_t* words_ = nullptr;
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
};

// Mutable counterpart of ConstBitMatrixSpan (same layout contract).
class BitMatrixSpan {
 public:
  BitMatrixSpan() = default;
  BitMatrixSpan(std::uint64_t* words, std::size_t rows, std::size_t cols)
      : words_(words), rows_(rows), cols_(cols) {}

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t row_words() const { return bitdetail::words_for(cols_); }

  operator ConstBitMatrixSpan() const {  // NOLINT(*-explicit-*)
    return {words_, rows_, cols_};
  }

  BitSpan row(std::size_t r) const {
    RDT_REQUIRE(r < rows_, "row index out of range");
    return {words_ + r * row_words(), cols_};
  }
  bool get(std::size_t r, std::size_t c) const { return row(r).get(c); }
  void set(std::size_t r, std::size_t c, bool value = true) const {
    row(r).set(c, value);
  }

  // Whole-matrix copy (dimensions must match) — one contiguous word copy,
  // then a per-row tail trim in case the source block carried tail garbage.
  void assign(ConstBitMatrixSpan other) const {
    RDT_REQUIRE(other.rows() == rows_ && other.cols() == cols_,
                "matrix dimensions mismatch");
    const std::size_t total = rows_ * row_words();
    const std::uint64_t* src = other.row(0).words();
    for (std::size_t w = 0; w < total; ++w) words_[w] = src[w];
    if (cols_ % 64 != 0)
      for (std::size_t r = 0; r < rows_; ++r)
        bitdetail::trim_tail(words_ + r * row_words(), cols_);
  }

 private:
  std::uint64_t* words_ = nullptr;
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
};

// Row-major matrix of bits over one contiguous word block. Rows are
// word-aligned so closure algorithms can OR whole rows together and views
// can address the matrix as a flat, block-strided plane.
class BitMatrix {
 public:
  BitMatrix() = default;
  BitMatrix(std::size_t rows, std::size_t cols, bool value = false)
      : rows_(rows),
        cols_(cols),
        row_words_(bitdetail::words_for(cols)),
        words_(rows * bitdetail::words_for(cols), value ? ~0ULL : 0ULL) {
    trim_rows();
  }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  bool get(std::size_t r, std::size_t c) const { return row(r).get(c); }
  void set(std::size_t r, std::size_t c, bool value = true) { row(r).set(c, value); }

  ConstBitSpan row(std::size_t r) const {
    RDT_REQUIRE(r < rows_, "row index out of range");
    return {words_.data() + r * row_words_, cols_};
  }
  BitSpan row(std::size_t r) {
    RDT_REQUIRE(r < rows_, "row index out of range");
    return {words_.data() + r * row_words_, cols_};
  }

  ConstBitMatrixSpan view() const { return {words_.data(), rows_, cols_}; }
  BitMatrixSpan view() { return {words_.data(), rows_, cols_}; }
  operator ConstBitMatrixSpan() const { return view(); }  // NOLINT(*-explicit-*)

  void fill(bool value) {
    for (auto& w : words_) w = value ? ~0ULL : 0ULL;
    trim_rows();
  }

  void set_diagonal(bool value) {
    RDT_REQUIRE(rows_ == cols_, "diagonal requires a square matrix");
    for (std::size_t i = 0; i < rows_; ++i) row(i).set(i, value);
  }

  std::size_t count() const {
    return bitkern::popcount(words_.data(), words_.size());
  }

  // Reflexive-transitive closure of the adjacency matrix (Warshall with
  // word-parallel row OR). Requires a square matrix.
  void close_transitively();

  friend bool operator==(const BitMatrix&, const BitMatrix&) = default;

 private:
  void trim_rows() {
    if (cols_ % 64 == 0) return;
    for (std::size_t r = 0; r < rows_; ++r)
      bitdetail::trim_tail(words_.data() + r * row_words_, cols_);
  }

  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::size_t row_words_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace rdt
