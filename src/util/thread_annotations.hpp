// Clang Thread Safety Analysis shims + the annotated mutex wrappers.
//
// The online engine's lock-free read path (seqlock + relaxed atomic
// mirrors), the sharded metrics registry and the sweep scheduler all carry
// locking contracts that TSan can only probe as far as test coverage
// reaches. Clang's -Wthread-safety proves them at compile time instead:
// every field names the mutex that guards it (RDT_GUARDED_BY), every
// helper names the mutex it expects held (RDT_REQUIRES), and the compiler
// rejects any access path that does not hold it. The CI `static-analysis`
// job builds the whole tree with -Wthread-safety -Werror=thread-safety;
// on GCC (which has no such analysis) every macro expands to nothing.
//
// House rules, machine-enforced by tools/rdt_lint.cpp (rule `bare-mutex`):
//  * never declare a bare std::mutex — use rdt::AnnotatedMutex;
//  * never lock with std::lock_guard/std::unique_lock — use rdt::MutexLock.
// std::call_once/std::once_flag remain allowed (TSA has no model for them,
// and the lazy-analysis caches in core/ rely on their exact semantics).
//
// Known analysis limits, and the house idioms for them:
//  * Lambdas are analyzed as separate functions: a capability held by the
//    enclosing scope is not visible inside the lambda body. Where a lambda
//    must touch guarded state (e.g. a seqlock read closure filling a
//    reader-cache scratch vector), bind a local reference to the guarded
//    field *outside* the lambda, under the lock, and capture that — the
//    alias documents the transfer and keeps the field itself checkable.
//  * Single-writer published state (PublishedLog, the atomic mirror
//    arrays) is deliberately *not* GUARDED_BY its writer mutex: readers
//    access it lock-free by design, and the release/acquire publication
//    protocol — not the mutex — is what makes that safe. The lint rule
//    `ticket-atomics` checks the complementary invariant: everything the
//    feeder mutates inside a seqlock write bracket is atomic or logged.
#pragma once

#include <mutex>

#if defined(__clang__)
#define RDT_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define RDT_THREAD_ANNOTATION(x)
#endif

// A type that acts as a lock (a "capability" in TSA terms).
#define RDT_CAPABILITY(x) RDT_THREAD_ANNOTATION(capability(x))
// An RAII type that acquires in its constructor and releases in its
// destructor (std::lock_guard shape).
#define RDT_SCOPED_CAPABILITY RDT_THREAD_ANNOTATION(scoped_lockable)

// Field annotations: which mutex protects this data (or the data behind
// this pointer).
#define RDT_GUARDED_BY(x) RDT_THREAD_ANNOTATION(guarded_by(x))
#define RDT_PT_GUARDED_BY(x) RDT_THREAD_ANNOTATION(pt_guarded_by(x))

// Function annotations: the caller must hold / must not hold the named
// capabilities, or the function itself acquires / releases them.
#define RDT_REQUIRES(...) \
  RDT_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define RDT_REQUIRES_SHARED(...) \
  RDT_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
#define RDT_ACQUIRE(...) \
  RDT_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define RDT_ACQUIRE_SHARED(...) \
  RDT_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define RDT_RELEASE(...) \
  RDT_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define RDT_RELEASE_SHARED(...) \
  RDT_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define RDT_TRY_ACQUIRE(...) \
  RDT_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define RDT_EXCLUDES(...) RDT_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

// Declarative ordering between mutexes (deadlock-freedom hints).
#define RDT_ACQUIRED_BEFORE(...) \
  RDT_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define RDT_ACQUIRED_AFTER(...) \
  RDT_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

// A function returning a reference to a capability.
#define RDT_RETURN_CAPABILITY(x) RDT_THREAD_ANNOTATION(lock_returned(x))
// Escape hatch: disables the analysis for one function. Every use must
// carry a comment explaining why the contract cannot be expressed.
#define RDT_NO_TSA RDT_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace rdt {

// std::mutex with the TSA capability attribute, so fields can be declared
// RDT_GUARDED_BY(mu_) and helpers RDT_REQUIRES(mu_). Same cost, same
// semantics; only the type carries meaning for the analysis.
class RDT_CAPABILITY("mutex") AnnotatedMutex {
 public:
  AnnotatedMutex() = default;
  AnnotatedMutex(const AnnotatedMutex&) = delete;
  AnnotatedMutex& operator=(const AnnotatedMutex&) = delete;

  void lock() RDT_ACQUIRE() { mu_.lock(); }
  void unlock() RDT_RELEASE() { mu_.unlock(); }
  bool try_lock() RDT_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

// Scoped lock over an AnnotatedMutex (the std::lock_guard of this
// codebase). Declared RDT_SCOPED_CAPABILITY so the analysis tracks the
// acquire/release bracket through construction and destruction.
class RDT_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(AnnotatedMutex& mu) RDT_ACQUIRE(mu) : mu_(mu) {
    mu_.lock();
  }
  ~MutexLock() RDT_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  AnnotatedMutex& mu_;
};

}  // namespace rdt
