// Plain-text table rendering for the benchmark harnesses.
//
// Every experiment binary prints the series the paper's figures/tables show
// as an aligned ASCII table (human-readable) and can also emit CSV so results
// can be re-plotted. Keeping this in one place guarantees all experiments
// report in a uniform format.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace rdt {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  // Start a new row; subsequent add() calls fill it left to right.
  Table& begin_row();
  Table& add(const std::string& cell);
  Table& add(double value, int precision = 4);
  Table& add(long long value);
  Table& add(int value) { return add(static_cast<long long>(value)); }
  Table& add(std::size_t value) { return add(static_cast<long long>(value)); }

  std::size_t num_rows() const { return rows_.size(); }

  // Aligned, boxed ASCII rendering.
  void print(std::ostream& os) const;
  // RFC-4180-ish CSV (cells containing commas/quotes are quoted).
  void print_csv(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace rdt
