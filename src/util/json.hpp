// A minimal JSON document model and recursive-descent parser.
//
// The repo *writes* JSON in two formats (rdt-bench-v1 reports from
// bench_common.hpp, rdt-trace-v1 chrome traces from obs/session.cpp); this
// is the reading half: tools/rdt_stats loads either file back, and
// trace_export_test round-trips the writers through it. It is a DOM, not a
// streaming parser — the documents involved are reports, not bulk data.
//
// Scope: full JSON (RFC 8259) input, including string escapes and \uXXXX
// (decoded to UTF-8). Numbers without fraction/exponent that fit a
// long long parse as integers, everything else as double. Objects preserve
// member order (like the writers) and allow duplicate keys; find() returns
// the first match. Parse errors throw std::invalid_argument with the byte
// offset, like the pattern parser in ccp/pattern_io.
#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

namespace rdt::json {

class Value;
using Member = std::pair<std::string, Value>;
using Array = std::vector<Value>;
using Object = std::vector<Member>;

class Value {
 public:
  enum class Kind { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  Value() = default;  // null
  explicit Value(bool b) : v_(b) {}
  explicit Value(long long i) : v_(i) {}
  explicit Value(double d) : v_(d) {}
  explicit Value(std::string s) : v_(std::move(s)) {}
  explicit Value(Array a) : v_(std::move(a)) {}
  explicit Value(Object o) : v_(std::move(o)) {}

  Kind kind() const { return static_cast<Kind>(v_.index()); }
  bool is_null() const { return kind() == Kind::kNull; }
  bool is_bool() const { return kind() == Kind::kBool; }
  bool is_int() const { return kind() == Kind::kInt; }
  bool is_double() const { return kind() == Kind::kDouble; }
  bool is_number() const { return is_int() || is_double(); }
  bool is_string() const { return kind() == Kind::kString; }
  bool is_array() const { return kind() == Kind::kArray; }
  bool is_object() const { return kind() == Kind::kObject; }

  // Checked accessors; throw std::invalid_argument on a kind mismatch.
  // as_double() accepts integers too (JSON has one number type).
  bool as_bool() const;
  long long as_int() const;
  double as_double() const;
  const std::string& as_string() const;
  const Array& as_array() const;
  const Object& as_object() const;

  // Object member lookup. find() returns nullptr when this value is not an
  // object or the key is absent; at() throws instead.
  const Value* find(std::string_view key) const;
  const Value& at(std::string_view key) const;

 private:
  std::variant<std::monostate, bool, long long, double, std::string, Array,
               Object>
      v_;
};

// Parse one complete JSON document (trailing whitespace allowed, trailing
// content is an error). Throws std::invalid_argument on malformed input.
Value parse(std::string_view text);

}  // namespace rdt::json
