#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/check.hpp"

namespace rdt {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  RDT_REQUIRE(!header_.empty(), "a table needs at least one column");
}

Table& Table::begin_row() {
  rows_.emplace_back();
  return *this;
}

Table& Table::add(const std::string& cell) {
  RDT_REQUIRE(!rows_.empty(), "begin_row() before add()");
  RDT_REQUIRE(rows_.back().size() < header_.size(), "row has more cells than columns");
  rows_.back().push_back(cell);
  return *this;
}

Table& Table::add(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return add(os.str());
}

Table& Table::add(long long value) { return add(std::to_string(value)); }

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  auto rule = [&] {
    os << '+';
    for (auto w : width) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };
  auto line = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t c = 0; c < header_.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string();
      os << ' ' << cell << std::string(width[c] - cell.size(), ' ') << " |";
    }
    os << '\n';
  };

  rule();
  line(header_);
  rule();
  for (const auto& row : rows_) line(row);
  rule();
}

void Table::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c > 0) os << ',';
      const std::string& cell = cells[c];
      if (cell.find_first_of(",\"\n") != std::string::npos) {
        os << '"';
        for (char ch : cell) {
          if (ch == '"') os << '"';
          os << ch;
        }
        os << '"';
      } else {
        os << cell;
      }
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
}

}  // namespace rdt
