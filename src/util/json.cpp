#include "util/json.hpp"

#include <cerrno>
#include <charconv>
#include <cstdlib>
#include <stdexcept>

namespace rdt::json {

namespace {

[[noreturn]] void kind_error(const char* wanted) {
  throw std::invalid_argument(std::string("json: value is not ") + wanted);
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value run() {
    Value v = value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing content after document");
    return v;
  }

 private:
  // Deep enough for any rdt-bench-v1 / rdt-trace-v1 document, shallow
  // enough that adversarial input cannot overflow the call stack.
  static constexpr int kMaxDepth = 256;

  [[noreturn]] void fail(const std::string& what) const {
    throw std::invalid_argument("json parse error at offset " +
                                std::to_string(pos_) + ": " + what);
  }

  bool eof() const { return pos_ >= text_.size(); }
  char peek() const { return text_[pos_]; }

  void skip_ws() {
    while (!eof() && (peek() == ' ' || peek() == '\t' || peek() == '\n' ||
                      peek() == '\r'))
      ++pos_;
  }

  void expect(char c) {
    if (eof() || peek() != c)
      fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume(char c) {
    if (!eof() && peek() == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  void literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word)
      fail("invalid literal");
    pos_ += word.size();
  }

  Value value() {
    if (++depth_ > kMaxDepth) fail("nesting too deep");
    skip_ws();
    if (eof()) fail("unexpected end of input");
    Value out;
    switch (peek()) {
      case '{': out = object(); break;
      case '[': out = array(); break;
      case '"': out = Value(string()); break;
      case 't': literal("true"); out = Value(true); break;
      case 'f': literal("false"); out = Value(false); break;
      case 'n': literal("null"); out = Value(); break;
      default: out = number(); break;
    }
    --depth_;
    return out;
  }

  Value object() {
    expect('{');
    Object members;
    skip_ws();
    if (consume('}')) return Value(std::move(members));
    while (true) {
      skip_ws();
      if (eof() || peek() != '"') fail("expected object key");
      std::string key = string();
      skip_ws();
      expect(':');
      members.emplace_back(std::move(key), value());
      skip_ws();
      if (consume(',')) continue;
      expect('}');
      return Value(std::move(members));
    }
  }

  Value array() {
    expect('[');
    Array items;
    skip_ws();
    if (consume(']')) return Value(std::move(items));
    while (true) {
      items.push_back(value());
      skip_ws();
      if (consume(',')) continue;
      expect(']');
      return Value(std::move(items));
    }
  }

  unsigned hex4() {
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      if (eof()) fail("truncated \\u escape");
      const char c = peek();
      code <<= 4;
      if (c >= '0' && c <= '9') code |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') code |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') code |= static_cast<unsigned>(c - 'A' + 10);
      else fail("invalid \\u escape digit");
      ++pos_;
    }
    return code;
  }

  static void append_utf8(std::string& out, unsigned cp) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xc0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3f));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xe0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
      out += static_cast<char>(0x80 | (cp & 0x3f));
    } else {
      out += static_cast<char>(0xf0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3f));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
      out += static_cast<char>(0x80 | (cp & 0x3f));
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    while (true) {
      if (eof()) fail("unterminated string");
      const char c = peek();
      ++pos_;
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20)
        fail("unescaped control character in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      if (eof()) fail("truncated escape");
      const char esc = peek();
      ++pos_;
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned cp = hex4();
          if (cp >= 0xd800 && cp <= 0xdbff) {  // high surrogate: need a pair
            if (!consume('\\') || !consume('u')) fail("unpaired surrogate");
            const unsigned lo = hex4();
            if (lo < 0xdc00 || lo > 0xdfff) fail("invalid low surrogate");
            cp = 0x10000 + ((cp - 0xd800) << 10) + (lo - 0xdc00);
          } else if (cp >= 0xdc00 && cp <= 0xdfff) {
            fail("unpaired surrogate");
          }
          append_utf8(out, cp);
          break;
        }
        default: fail("invalid escape character");
      }
    }
  }

  Value number() {
    const std::size_t start = pos_;
    consume('-');
    if (eof() || peek() < '0' || peek() > '9') fail("invalid number");
    if (peek() == '0') {
      ++pos_;  // a leading zero stands alone (RFC 8259)
    } else {
      while (!eof() && peek() >= '0' && peek() <= '9') ++pos_;
    }
    bool integral = true;
    if (consume('.')) {
      integral = false;
      if (eof() || peek() < '0' || peek() > '9') fail("digits required after '.'");
      while (!eof() && peek() >= '0' && peek() <= '9') ++pos_;
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      integral = false;
      ++pos_;
      if (!eof() && (peek() == '+' || peek() == '-')) ++pos_;
      if (eof() || peek() < '0' || peek() > '9') fail("digits required in exponent");
      while (!eof() && peek() >= '0' && peek() <= '9') ++pos_;
    }
    const std::string_view token = text_.substr(start, pos_ - start);
    if (integral) {
      long long i = 0;
      const auto [ptr, ec] =
          std::from_chars(token.data(), token.data() + token.size(), i);
      if (ec == std::errc() && ptr == token.data() + token.size())
        return Value(i);
      // Magnitude overflow: fall through to double like other parsers do.
    }
    const std::string copy(token);  // strtod needs a terminator
    errno = 0;
    char* end = nullptr;
    const double d = std::strtod(copy.c_str(), &end);
    if (end != copy.c_str() + copy.size()) fail("invalid number");
    return Value(d);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

bool Value::as_bool() const {
  if (!is_bool()) kind_error("a bool");
  return std::get<bool>(v_);
}

long long Value::as_int() const {
  if (!is_int()) kind_error("an integer");
  return std::get<long long>(v_);
}

double Value::as_double() const {
  if (is_int()) return static_cast<double>(std::get<long long>(v_));
  if (!is_double()) kind_error("a number");
  return std::get<double>(v_);
}

const std::string& Value::as_string() const {
  if (!is_string()) kind_error("a string");
  return std::get<std::string>(v_);
}

const Array& Value::as_array() const {
  if (!is_array()) kind_error("an array");
  return std::get<Array>(v_);
}

const Object& Value::as_object() const {
  if (!is_object()) kind_error("an object");
  return std::get<Object>(v_);
}

const Value* Value::find(std::string_view key) const {
  if (!is_object()) return nullptr;
  for (const Member& m : std::get<Object>(v_))
    if (m.first == key) return &m.second;
  return nullptr;
}

const Value& Value::at(std::string_view key) const {
  const Value* v = find(key);
  if (v == nullptr)
    throw std::invalid_argument("json: missing member '" + std::string(key) +
                                "'");
  return *v;
}

Value parse(std::string_view text) { return Parser(text).run(); }

}  // namespace rdt::json
