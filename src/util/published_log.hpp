// Append-only single-writer log with lock-free readers.
//
// The online engine's feeder thread appends R-graph nodes and edges here;
// any number of reader threads replay stable prefixes into their own caches
// without ever blocking the feeder. Two properties make that safe:
//
//  * Stable addresses. Storage is a spine of geometrically growing chunks
//    (2^10, 2^11, ... entries), never reallocated, so an entry's address is
//    fixed the moment it is written — readers hold no iterator a later
//    append could invalidate.
//  * Publication by size. The writer stores the entry (plain write), then
//    release-stores the new count; a reader acquire-loads the count and may
//    then read entries [0, count) with plain loads. The release/acquire
//    pair on size_ carries the happens-before edge for both the entry and
//    its chunk pointer, so every access is either atomic or ordered — clean
//    under TSan.
//
// Contract: exactly ONE writer thread (external synchronization, e.g. the
// engine's feed mutex); entries are immutable once published.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstddef>
#include <memory>
#include <utility>

namespace rdt {

template <typename T>
class PublishedLog {
 public:
  PublishedLog() = default;
  PublishedLog(const PublishedLog&) = delete;
  PublishedLog& operator=(const PublishedLog&) = delete;

  // Writer-side count (callable only by the writer).
  std::size_t size() const { return count_; }

  // Reader-side count: entries [0, size_published()) are safe to read.
  std::size_t size_published() const {
    return size_.load(std::memory_order_acquire);
  }

  // Valid for i < size_published() (readers) or i < size() (the writer).
  const T& operator[](std::size_t i) const {
    const Loc loc = locate(i);
    return chunks_[loc.chunk][loc.offset];
  }

  // Writer only, and only while no reader holds a prefix: rewinds the log
  // to empty but keeps every allocated chunk, so refilling after a reset
  // reuses the old storage. Entries above the new count become writable
  // again — the "immutable once published" guarantee restarts from here,
  // which is why concurrent readers are excluded (the engine's reset()
  // contract, not a lock, enforces that).
  void reset() {
    count_ = 0;
    size_.store(0, std::memory_order_release);
  }

  // Writer only, same exclusion contract as reset(): frees every chunk that
  // lies entirely above the current count. reset() deliberately keeps the
  // chunks so a recycled log regrows allocation-free; a *compacting* caller
  // pairs reset()+refill with this call to actually return the prefix
  // storage — the large tail chunks a long stream grew — to the allocator.
  // The spine itself is untouched, so reader addressing never changes.
  void release_unused_chunks() {
    const std::size_t first_free =
        count_ == 0 ? 0 : locate(count_ - 1).chunk + 1;
    for (std::size_t k = first_free; k < kMaxChunks; ++k) chunks_[k].reset();
  }

  // Writer-side accounting: bytes of allocated chunk storage (capacity, not
  // count — an allocated chunk is resident whether or not it is full).
  std::size_t resident_bytes() const {
    std::size_t bytes = 0;
    for (std::size_t k = 0; k < kMaxChunks; ++k)
      if (chunks_[k]) bytes += capacity_of(k) * sizeof(T);
    return bytes;
  }

  // Writer only.
  void push_back(T v) {
    const Loc loc = locate(count_);
    auto& chunk = chunks_[loc.chunk];
    if (!chunk) chunk = std::make_unique<T[]>(capacity_of(loc.chunk));
    chunk[loc.offset] = std::move(v);
    ++count_;
    size_.store(count_, std::memory_order_release);
  }

 private:
  static constexpr std::size_t kBaseLog2 = 10;  // first chunk: 1024 entries
  static constexpr std::size_t kMaxChunks = 64 - kBaseLog2;

  struct Loc {
    std::size_t chunk;
    std::size_t offset;
  };

  // Chunk k holds entries [2^(10+k) - 2^10, 2^(10+k+1) - 2^10), so the
  // (chunk, offset) of a global index falls out of one bit_width.
  static Loc locate(std::size_t i) {
    const std::size_t v = i + (std::size_t{1} << kBaseLog2);
    const auto k = static_cast<std::size_t>(std::bit_width(v)) - 1;
    return {k - kBaseLog2, v - (std::size_t{1} << k)};
  }

  static std::size_t capacity_of(std::size_t chunk) {
    return std::size_t{1} << (kBaseLog2 + chunk);
  }

  std::array<std::unique_ptr<T[]>, kMaxChunks> chunks_;
  std::size_t count_ = 0;                  // writer's private count
  std::atomic<std::size_t> size_{0};       // published count
};

}  // namespace rdt
