#include "serve/driver.hpp"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "util/check.hpp"
#include "util/thread_annotations.hpp"

namespace rdt::serve {

namespace {

using Clock = std::chrono::steady_clock;

double micros_since(Clock::time_point start) {
  return std::chrono::duration<double, std::micro>(Clock::now() - start)
      .count();
}

// One producer's accumulated results, merged into the report post-join.
struct ClientTally {
  long long frames = 0;
  long long cheap_queries = 0;
  long long recovery_queries = 0;
  long long checksum = 0;  // folds the racing answers; keeps them un-elidable
  std::vector<double> cheap_query_us;
  std::vector<double> recovery_query_us;
};

// The producer body: round-robin the owned sessions, one frame each per
// pass, so every shard sees interleaved multi-tenant traffic. The frame
// scratch buffer and the per-session cursors live for the thread's whole
// run — steady-state submission allocates nothing once the buffer warms up.
void run_one_client(ServePool& pool, std::span<const StreamEvent> events,
                    const DriverOptions& options, SessionId first,
                    int num_sessions, ClientTally& tally) {
  const std::size_t batch = options.batch_events;
  const std::size_t num_frames = (events.size() + batch - 1) / batch;
  std::vector<std::uint8_t> frame;
  long long submitted = 0;
  for (std::size_t f = 0; f < num_frames; ++f) {
    const std::span<const StreamEvent> chunk =
        events.subspan(f * batch, std::min(batch, events.size() - f * batch));
    for (int k = 0; k < num_sessions; ++k) {
      const SessionId sid = first + static_cast<SessionId>(k);
      frame.clear();
      encode_frame(sid, chunk, frame);
      pool.submit(frame);
      ++tally.frames;
      ++submitted;
      // Live queries against the session just fed: answers race the shard
      // worker by design — the timing is the point, the values are checked
      // after drain().
      if (options.cheap_query_stride > 0 &&
          submitted % options.cheap_query_stride == 0) {
        const auto start = Clock::now();
        const bool rdt = pool.is_rdt_so_far(sid);
        const OnlineStats stats = pool.session_stats(sid).value;
        tally.cheap_query_us.push_back(micros_since(start));
        ++tally.cheap_queries;
        tally.checksum += (rdt ? 1 : 0) + stats.messages;
      }
      if (options.recovery_query_stride > 0 &&
          submitted % options.recovery_query_stride == 0) {
        const auto start = Clock::now();
        const RecoveryOutcome rec = pool.recovery_line(sid).value;
        tally.recovery_query_us.push_back(micros_since(start));
        ++tally.recovery_queries;
        tally.checksum += rec.total_rollback;
      }
    }
  }
}

}  // namespace

DriverReport run_clients(ServePool& pool, std::span<const StreamEvent> events,
                         const DriverOptions& options) {
  RDT_REQUIRE(options.sessions >= 1, "need at least one session");
  RDT_REQUIRE(options.clients >= 1, "need at least one client");
  RDT_REQUIRE(options.batch_events >= 1, "need at least one event per frame");
  RDT_REQUIRE(!events.empty(), "need a non-empty event stream");

  DriverReport report;
  report.events =
      static_cast<long long>(events.size()) * options.sessions;

  const auto start = Clock::now();
  for (int k = 0; k < options.sessions; ++k)
    pool.open_session(options.first_session + static_cast<SessionId>(k));

  // Split the sessions into `clients` contiguous ranges; the last range
  // absorbs the remainder (every session is owned by exactly one producer,
  // which keeps per-session frame order = submission order).
  const int clients = std::min(options.clients, options.sessions);
  const int per_client = options.sessions / clients;
  std::vector<ClientTally> tallies(static_cast<std::size_t>(clients));
  std::vector<std::thread> producers;
  producers.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    const SessionId first =
        options.first_session + static_cast<SessionId>(c * per_client);
    const int owned =
        c + 1 == clients ? options.sessions - c * per_client : per_client;
    ClientTally& tally = tallies[static_cast<std::size_t>(c)];
    producers.emplace_back([&pool, events, &options, first, owned, &tally] {
      run_one_client(pool, events, options, first, owned, tally);
    });
  }
  for (std::thread& t : producers) t.join();
  pool.drain();
  report.wall_seconds =
      std::chrono::duration<double>(Clock::now() - start).count();

  for (ClientTally& tally : tallies) {
    report.frames += tally.frames;
    report.cheap_queries += tally.cheap_queries;
    report.recovery_queries += tally.recovery_queries;
    report.cheap_query_us.insert(report.cheap_query_us.end(),
                                 tally.cheap_query_us.begin(),
                                 tally.cheap_query_us.end());
    report.recovery_query_us.insert(report.recovery_query_us.end(),
                                    tally.recovery_query_us.begin(),
                                    tally.recovery_query_us.end());
  }

  // Final audit sweep (outside the timed window): every session's settled
  // answers, summed for the caller's equivalence check.
  for (int k = 0; k < options.sessions; ++k) {
    const SessionId sid = options.first_session + static_cast<SessionId>(k);
    report.rdt_sessions += pool.is_rdt_so_far(sid) ? 1 : 0;
    report.rollback_total += pool.recovery_line(sid).value.total_rollback;
    report.events_consumed += pool.events_consumed(sid);
    report.delivered_messages += pool.session_stats(sid).value.messages;
  }

  if (options.close_sessions) {
    for (int k = 0; k < options.sessions; ++k)
      pool.close_session(options.first_session + static_cast<SessionId>(k));
    pool.drain();
  }
  return report;
}

}  // namespace rdt::serve
