#include "serve/driver.hpp"

#include <algorithm>
#include <chrono>
#include <memory>
#include <thread>
#include <unordered_map>
#include <utility>

#include "protocols/registry.hpp"
#include "util/check.hpp"
#include "util/thread_annotations.hpp"

namespace rdt::serve {

namespace {

using Clock = std::chrono::steady_clock;

double micros_since(Clock::time_point start) {
  return std::chrono::duration<double, std::micro>(Clock::now() - start)
      .count();
}

// One producer's accumulated results, merged into the report post-join.
struct ClientTally {
  long long frames = 0;
  long long cheap_queries = 0;
  long long recovery_queries = 0;
  long long checksum = 0;  // folds the racing answers; keeps them un-elidable
  std::vector<double> cheap_query_us;
  std::vector<double> recovery_query_us;
};

// Replays `events` through real protocol instances and encodes each send's
// payload with the protocol's declared codec, chopped into one
// PiggybackSection per `batch`-event frame. Runs once per driver run; the
// per-frame sections are then shared read-only by every producer thread.
std::vector<PiggybackSection> build_piggyback_sections(
    std::span<const StreamEvent> events, ProtocolKind kind, int num_processes,
    std::size_t batch) {
  const ProtocolRegistry& registry = ProtocolRegistry::instance();
  const ProtocolInfo& info = registry.info(kind);
  std::vector<std::unique_ptr<CicProtocol>> procs;
  procs.reserve(static_cast<std::size_t>(num_processes));
  for (int p = 0; p < num_processes; ++p)
    procs.push_back(registry.create(kind, num_processes, p));
  PiggybackCodec codec;
  codec.reset(info.codec, num_processes, info.shape);
  std::unordered_map<int, Piggyback> in_flight;  // msg id -> sent payload
  const std::size_t num_frames = (events.size() + batch - 1) / batch;
  std::vector<PiggybackSection> sections(num_frames);
  for (std::size_t f = 0; f < num_frames; ++f) {
    PiggybackSection& section = sections[f];
    section.protocol = kind;
    section.codec = info.codec;
    section.num_processes = num_processes;
    const std::span<const StreamEvent> chunk =
        events.subspan(f * batch, std::min(batch, events.size() - f * batch));
    for (const StreamEvent& e : chunk) {
      RDT_REQUIRE(e.p >= 0 && e.p < num_processes &&
                      (e.kind == EventKind::kInternal ||
                       e.kind == EventKind::kCheckpoint ||
                       (e.q >= 0 && e.q < num_processes)),
                  "piggyback generation needs stream processes inside the "
                  "pool's process count");
      switch (e.kind) {
        case EventKind::kSend: {
          // e.p is the sender, e.q the receiver.
          CicProtocol& sender = *procs[static_cast<std::size_t>(e.p)];
          Piggyback payload = sender.make_payload();
          sender.on_send(e.q, payload.slot());
          const std::size_t len =
              codec.encode(e.p, e.q, payload.view(), section.bytes);
          section.sizes.push_back(static_cast<std::uint32_t>(len));
          if (sender.checkpoint_after_send())
            sender.on_forced_checkpoint(ForceReason::kCheckpointAfterSend);
          in_flight.insert_or_assign(e.msg, std::move(payload));
          break;
        }
        case EventKind::kDeliver: {
          // Streams are recorded traces, so the matching send precedes the
          // deliver; an unmatched msg id would be a malformed stream. The
          // acting protocol is the receiver (e.q); e.p names the sender.
          const auto it = in_flight.find(e.msg);
          RDT_REQUIRE(it != in_flight.end(),
                      "deliver of a message the stream never sent");
          CicProtocol& receiver = *procs[static_cast<std::size_t>(e.q)];
          const PiggybackView view = it->second.view();
          if (const ForceReason reason = receiver.force_reason(view, e.p);
              reason != ForceReason::kNone)
            receiver.on_forced_checkpoint(reason);
          receiver.on_deliver(view, e.p);
          in_flight.erase(it);
          break;
        }
        case EventKind::kCheckpoint:
          procs[static_cast<std::size_t>(e.p)]->on_basic_checkpoint();
          break;
        case EventKind::kInternal:
          break;
      }
    }
  }
  return sections;
}

// The producer body: round-robin the owned sessions, one frame each per
// pass, so every shard sees interleaved multi-tenant traffic. The frame
// scratch buffer and the per-session cursors live for the thread's whole
// run — steady-state submission allocates nothing once the buffer warms up.
void run_one_client(ServePool& pool, std::span<const StreamEvent> events,
                    const DriverOptions& options,
                    std::span<const PiggybackSection> sections, SessionId first,
                    int num_sessions, ClientTally& tally) {
  const std::size_t batch = options.batch_events;
  const std::size_t num_frames = (events.size() + batch - 1) / batch;
  std::vector<std::uint8_t> frame;
  long long submitted = 0;
  for (std::size_t f = 0; f < num_frames; ++f) {
    const std::span<const StreamEvent> chunk =
        events.subspan(f * batch, std::min(batch, events.size() - f * batch));
    for (int k = 0; k < num_sessions; ++k) {
      const SessionId sid = first + static_cast<SessionId>(k);
      frame.clear();
      if (sections.empty())
        encode_frame(sid, chunk, frame);
      else
        encode_frame(sid, chunk, sections[f], frame);
      pool.submit(frame);
      ++tally.frames;
      ++submitted;
      // Live queries against the session just fed: answers race the shard
      // worker by design — the timing is the point, the values are checked
      // after drain().
      if (options.cheap_query_stride > 0 &&
          submitted % options.cheap_query_stride == 0) {
        const auto start = Clock::now();
        const bool rdt = pool.is_rdt_so_far(sid);
        const OnlineStats stats = pool.session_stats(sid).value;
        tally.cheap_query_us.push_back(micros_since(start));
        ++tally.cheap_queries;
        tally.checksum += (rdt ? 1 : 0) + stats.messages;
      }
      if (options.recovery_query_stride > 0 &&
          submitted % options.recovery_query_stride == 0) {
        const auto start = Clock::now();
        const RecoveryOutcome rec = pool.recovery_line(sid).value;
        tally.recovery_query_us.push_back(micros_since(start));
        ++tally.recovery_queries;
        tally.checksum += rec.total_rollback;
      }
    }
  }
}

}  // namespace

DriverReport run_clients(ServePool& pool, std::span<const StreamEvent> events,
                         const DriverOptions& options) {
  RDT_REQUIRE(options.sessions >= 1, "need at least one session");
  RDT_REQUIRE(options.clients >= 1, "need at least one client");
  RDT_REQUIRE(options.batch_events >= 1, "need at least one event per frame");
  RDT_REQUIRE(!events.empty(), "need a non-empty event stream");

  DriverReport report;
  report.events =
      static_cast<long long>(events.size()) * options.sessions;

  // Generated before the timed window opens: the encode work is the
  // client's, the pool only ever decodes.
  std::vector<PiggybackSection> sections;
  if (options.piggyback)
    sections = build_piggyback_sections(events, *options.piggyback,
                                        pool.num_processes(),
                                        options.batch_events);

  const auto start = Clock::now();
  for (int k = 0; k < options.sessions; ++k)
    pool.open_session(options.first_session + static_cast<SessionId>(k));

  // Split the sessions into `clients` contiguous ranges; the last range
  // absorbs the remainder (every session is owned by exactly one producer,
  // which keeps per-session frame order = submission order).
  const int clients = std::min(options.clients, options.sessions);
  const int per_client = options.sessions / clients;
  std::vector<ClientTally> tallies(static_cast<std::size_t>(clients));
  std::vector<std::thread> producers;
  producers.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    const SessionId first =
        options.first_session + static_cast<SessionId>(c * per_client);
    const int owned =
        c + 1 == clients ? options.sessions - c * per_client : per_client;
    ClientTally& tally = tallies[static_cast<std::size_t>(c)];
    producers.emplace_back(
        [&pool, events, &options, &sections, first, owned, &tally] {
          run_one_client(pool, events, options, sections, first, owned, tally);
        });
  }
  for (std::thread& t : producers) t.join();
  pool.drain();
  report.wall_seconds =
      std::chrono::duration<double>(Clock::now() - start).count();

  for (ClientTally& tally : tallies) {
    report.frames += tally.frames;
    report.cheap_queries += tally.cheap_queries;
    report.recovery_queries += tally.recovery_queries;
    report.cheap_query_us.insert(report.cheap_query_us.end(),
                                 tally.cheap_query_us.begin(),
                                 tally.cheap_query_us.end());
    report.recovery_query_us.insert(report.recovery_query_us.end(),
                                    tally.recovery_query_us.begin(),
                                    tally.recovery_query_us.end());
  }

  for (int i = 0; i < pool.num_shards(); ++i) {
    const ShardStats shard = pool.shard_stats(i);
    report.piggyback_frames += shard.piggyback_frames;
    report.piggyback_bits += shard.piggyback_bits;
    report.piggyback_rejected += shard.piggyback_rejected;
  }

  // Final audit sweep (outside the timed window): every session's settled
  // answers, summed for the caller's equivalence check.
  for (int k = 0; k < options.sessions; ++k) {
    const SessionId sid = options.first_session + static_cast<SessionId>(k);
    report.rdt_sessions += pool.is_rdt_so_far(sid) ? 1 : 0;
    report.rollback_total += pool.recovery_line(sid).value.total_rollback;
    report.events_consumed += pool.events_consumed(sid);
    report.delivered_messages += pool.session_stats(sid).value.messages;
  }

  if (options.close_sessions) {
    for (int k = 0; k < options.sessions; ++k)
      pool.close_session(options.first_session + static_cast<SessionId>(k));
    pool.drain();
  }
  return report;
}

}  // namespace rdt::serve
