// ServePool — the multi-tenant serving layer over OnlineEngine.
//
// One pool multiplexes many client *sessions* (independent checkpoint
// streams, each with its own OnlineEngine) over a fixed set of S *shards*.
// A session hashes to one shard for its whole lifetime; each shard owns a
// bounded MPSC frame queue and one worker thread that drains frames into
// the session engines via the batched feed(span) fast path. Clients submit
// pre-encoded wire frames (serve/wire.hpp) from any thread and run live
// queries (is_rdt_so_far / recovery_line / stats) concurrently — queries
// ride the engine's lock-free read path, so a query never blocks a shard
// worker and a worker never blocks a query.
//
// Lifecycle per session:
//   open_session(id)   — bind id to an engine (recycled via reset() when a
//                        closed session's engine is free, else fresh);
//   submit(frame)      — enqueue one encoded frame for the owning shard
//                        (FIFO per shard, so per-session event order is the
//                        submission order); blocks when the shard queue is
//                        full (backpressure, never unbounded memory);
//   queries            — valid from open until close_session returns;
//   close_session(id)  — enqueue the close *behind* every already-submitted
//                        frame; when the worker reaches it, the engine is
//                        retired to the shard's free list for reuse.
// drain() blocks until every shard's queue is empty and its worker idle —
// the pool-wide "all submitted work applied" barrier.
//
// Steady-state serving does not allocate per event: frame byte buffers are
// recycled through a per-shard pool, the worker decodes into one reused
// Frame, feed() reuses the engine's internal pools, and a reopened session
// reuses a reset engine's arenas.
//
// Thread-safety contract (TSA-annotated, lint-enforced):
//   * every shard field is guarded by that shard's mu; cross-shard state is
//     immutable after construction;
//   * engines are held by shared_ptr: a query copies the pointer under the
//     shard mu, releases it, then queries lock-free — so a racing close
//     cannot free an engine out from under a query, and an engine is only
//     reset for reuse once no query still holds it (use_count() == 1 under
//     the shard mu, where every new reference is minted);
//   * exactly one thread (the shard worker) ever feeds a given engine, as
//     OnlineEngine's single-feeder contract requires.
//
// A malformed frame *payload* (the envelope was validated at submit) is
// dropped at decode time and counted in ShardStats::rejected — one bad
// client must not take down the pool. The events of a rejected frame that
// preceded the fault are applied, exactly like a failing feed() batch.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <thread>
#include <unordered_map>
#include <vector>

#include "online/engine.hpp"
#include "serve/wire.hpp"
#include "util/thread_annotations.hpp"

namespace rdt::serve {

struct PoolOptions {
  int shards = 1;
  int num_processes = 2;           // process count of every session engine
  std::size_t queue_frames = 256;  // per-shard queue bound (backpressure)
  // Default retention policy of every session engine. A long-lived pool
  // should run bounded (RetentionPolicy::bounded()) so no single session can
  // grow without limit; open_session's two-argument overload opts an
  // individual session out of (or into) the default.
  RetentionPolicy retention{};
};

// Per-shard counters, read via shard_stats() or flushed to the obs registry
// by flush_metrics(). Average batch size is events / frames; events per
// second is events over the caller's wall clock (bench/bench_serve.cpp).
// The retention fields are point-in-time samples over the shard's *open*
// sessions (engines on the free list are excluded): cumulative compaction /
// eviction counters plus the summed resident-bytes accounting.
struct ShardStats {
  long long frames = 0;            // frames fed into engines
  long long events = 0;            // events those frames carried
  long long rejected = 0;          // frames dropped for a malformed payload
  long long piggyback_frames = 0;  // frames whose piggyback section decoded
  long long piggyback_bits = 0;    // wire bits those sections carried
  long long piggyback_rejected = 0;  // sections dropped (bad ids or bytes)
  long long sessions_opened = 0;
  long long engines_recycled = 0;  // opens served by a reset() engine
  std::size_t max_queue_depth = 0;
  long long compactions = 0;           // across open sessions (cumulative)
  long long evicted_checkpoints = 0;   // across open sessions (cumulative)
  std::size_t resident_bytes = 0;      // summed engine accounting, sampled
};

class ServePool {
 public:
  explicit ServePool(PoolOptions options);
  ~ServePool();
  ServePool(const ServePool&) = delete;
  ServePool& operator=(const ServePool&) = delete;

  int num_shards() const { return static_cast<int>(shards_.size()); }
  int num_processes() const { return options_.num_processes; }
  // The shard a session's frames are routed to (stable for the pool's
  // lifetime; exposed so tests can build shard-colliding workloads).
  int shard_of(SessionId id) const;

  // --- lifecycle -----------------------------------------------------------
  // Opens under the pool's default retention policy (PoolOptions::retention).
  void open_session(SessionId id);
  // Opens with a per-session policy: a trusted long-running tenant may keep
  // full history (RetentionPolicy::keep_all()) on a pool whose default is
  // bounded, and vice versa. The engine — fresh or recycled — is
  // constructed/reset under exactly this policy.
  void open_session(SessionId id, const RetentionPolicy& retention);
  // One encoded frame, exactly (the span must end where the frame ends).
  // Throws std::invalid_argument for a malformed envelope, an unknown or
  // closing session; blocks while the owning shard's queue is full.
  void submit(std::span<const std::uint8_t> frame);
  void close_session(SessionId id);
  // Blocks until every shard's queue is empty and its worker is idle.
  void drain();

  // --- live queries (valid between open_session and close_session) --------
  // The structured results mirror OnlineEngine's horizon-aware surface
  // (online/options.hpp): recovery_line and session_stats are always kOk,
  // but the shape is shared so callers handle one result type.
  bool is_rdt_so_far(SessionId id) const;
  RecoveryResult recovery_line(SessionId id) const;
  StatsResult session_stats(SessionId id) const;
  // The session engine's cumulative eviction counters + resident bytes.
  RetentionStats session_retention(SessionId id) const;
  long long events_consumed(SessionId id) const;

  ShardStats shard_stats(int shard) const;
  // In an observability build with a session active, fold the per-shard
  // counters into the registry (names "serve.*" / "serve.shard<k>.*").
  void flush_metrics() const;

 private:
  // One queue slot: an encoded frame, or a close marker (empty bytes).
  // The engine pointer is resolved at submit time so the worker feeds
  // without a second session-map lookup.
  // Per-session piggyback decoder. Only the shard worker touches the
  // contents (one worker per shard, items applied in submission order);
  // client threads merely create and drop the shared_ptr. num_processes
  // == 0 means "not yet configured" — the first piggyback frame fixes the
  // (protocol, codec) pair for the session's lifetime, since the delta
  // codec's channel shadows are stateful across frames.
  struct SessionCodec {
    PiggybackCodec codec;
    ProtocolKind protocol = ProtocolKind::kNoForce;
    PiggybackCodecKind kind = PiggybackCodecKind::kFlat;
    PayloadShape shape;
    int num_processes = 0;
  };

  struct Item {
    std::vector<std::uint8_t> bytes;
    SessionId session = 0;
    std::shared_ptr<OnlineEngine> engine;
    std::shared_ptr<SessionCodec> codec;
    bool close = false;
  };

  struct Session {
    std::shared_ptr<OnlineEngine> engine;
    std::shared_ptr<SessionCodec> codec;
    bool closing = false;  // close queued; rejects further submits
  };

  struct Shard {
    mutable AnnotatedMutex mu;
    // Condition variables pair with mu (std::condition_variable_any waits
    // directly on the AnnotatedMutex, keeping the capability visible to
    // TSA at every guarded access).
    std::condition_variable_any nonempty;  // queue gained an item
    std::condition_variable_any space;     // queue lost an item
    std::condition_variable_any idle;      // queue empty and worker idle
    std::vector<Item> ring RDT_GUARDED_BY(mu);  // fixed-capacity FIFO
    std::size_t head RDT_GUARDED_BY(mu) = 0;
    std::size_t count RDT_GUARDED_BY(mu) = 0;
    bool busy RDT_GUARDED_BY(mu) = false;  // worker applying an item
    bool stopping RDT_GUARDED_BY(mu) = false;
    std::unordered_map<SessionId, Session> sessions RDT_GUARDED_BY(mu);
    std::vector<std::shared_ptr<OnlineEngine>> free_engines
        RDT_GUARDED_BY(mu);
    std::vector<std::vector<std::uint8_t>> buffer_pool RDT_GUARDED_BY(mu);
    ShardStats stats RDT_GUARDED_BY(mu);
    std::thread worker;  // started last in the constructor, joined first
  };

  // Worker-local scratch planes the piggyback decoder fills; grow-only so
  // the steady state stays allocation-free.
  struct PiggybackScratch {
    std::vector<CkptIndex> tdv;
    std::vector<std::uint64_t> simple;
    std::vector<std::uint64_t> causal;
    CkptIndex index = 0;
  };

  Shard& shard_for(SessionId id) const { return *shards_[static_cast<std::size_t>(shard_of(id))]; }
  std::shared_ptr<OnlineEngine> engine_of(SessionId id) const;
  void push_item(Shard& shard, Item item) RDT_REQUIRES(shard.mu);
  void worker_loop(Shard& shard);
  // Decodes `frame`'s piggyback section through the session codec into the
  // scratch planes. Returns false (and leaves the codec unconfigured, so a
  // later frame can start over) when the section's ids disagree with the
  // pool or the bytes are malformed; `bits` accumulates the wire bits of
  // a successful decode.
  bool apply_piggyback(SessionCodec& sc, const Frame& frame,
                       PiggybackScratch& scratch, long long* bits) const;

  const PoolOptions options_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace rdt::serve
