#include "serve/wire.hpp"

#include <sstream>
#include <stdexcept>
#include <string>

#include "util/check.hpp"

namespace rdt::serve {

namespace {

[[noreturn]] void fail(std::size_t offset, const std::string& what) {
  std::ostringstream os;
  os << "wire: byte " << offset << ": " << what;
  throw std::invalid_argument(os.str());
}

void put_varint(std::uint64_t v, std::vector<std::uint8_t>& out) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80u);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

// LEB128 decode, bounded to `end`. Rejects truncation, encodings longer
// than 10 bytes, and 10-byte encodings whose final byte overflows 64 bits.
std::uint64_t get_varint(std::span<const std::uint8_t> bytes,
                         std::size_t& offset, std::size_t end,
                         const char* what) {
  std::uint64_t v = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    if (offset >= end)
      fail(offset, std::string("truncated varint while reading ") + what);
    const std::uint8_t b = bytes[offset++];
    if (shift == 63 && (b & 0x7Eu) != 0)
      fail(offset - 1, std::string(what) + " varint overflows 64 bits");
    v |= static_cast<std::uint64_t>(b & 0x7Fu) << shift;
    if ((b & 0x80u) == 0) return v;
  }
  fail(offset - 1, std::string(what) + " varint runs past 10 bytes");
}

// Narrow a decoded varint into a non-negative int below `cap`.
int get_bounded_int(std::span<const std::uint8_t> bytes, std::size_t& offset,
                    std::size_t end, std::uint64_t cap, const char* what) {
  const std::size_t at = offset;
  const std::uint64_t v = get_varint(bytes, offset, end, what);
  if (v >= cap)
    fail(at, std::string(what) + " " + std::to_string(v) +
                 " exceeds the wire cap " + std::to_string(cap - 1));
  return static_cast<int>(v);
}

void encode_event(const StreamEvent& e, std::vector<std::uint8_t>& out) {
  RDT_REQUIRE(e.p >= 0 && e.p < kMaxWireProcesses,
              "stream event process id outside the wire range");
  const auto kind = static_cast<std::uint64_t>(e.kind);
  RDT_REQUIRE(kind < 4, "unknown stream event kind");
  put_varint((static_cast<std::uint64_t>(e.p) << 2) | kind, out);
  switch (e.kind) {
    case EventKind::kSend:
    case EventKind::kDeliver:
      RDT_REQUIRE(e.msg >= 0 && e.msg < kMaxWireIndex,
                  "message id outside the wire range");
      RDT_REQUIRE(e.q >= 0 && e.q < kMaxWireProcesses && e.q != e.p,
                  "peer process id outside the wire range");
      put_varint(static_cast<std::uint64_t>(e.msg), out);
      put_varint(static_cast<std::uint64_t>(e.q), out);
      return;
    case EventKind::kInternal:
      return;
    case EventKind::kCheckpoint:
      RDT_REQUIRE(e.index >= 1 && e.index < kMaxWireIndex,
                  "checkpoint index outside the wire range");
      put_varint(static_cast<std::uint64_t>(e.index), out);
      return;
  }
}

StreamEvent decode_event(std::span<const std::uint8_t> bytes,
                         std::size_t& offset, std::size_t end) {
  const std::size_t at = offset;
  const std::uint64_t header = get_varint(bytes, offset, end, "event header");
  const std::uint64_t kind = header & 3u;
  const std::uint64_t p = header >> 2;
  if (p >= static_cast<std::uint64_t>(kMaxWireProcesses))
    fail(at, "event process id " + std::to_string(p) +
                 " exceeds the wire cap");
  const auto process = static_cast<ProcessId>(p);
  switch (static_cast<EventKind>(kind)) {
    case EventKind::kInternal:
      return StreamEvent::internal(process);
    case EventKind::kSend:
    case EventKind::kDeliver: {
      const int msg = get_bounded_int(
          bytes, offset, end, static_cast<std::uint64_t>(kMaxWireIndex),
          "message id");
      const std::size_t peer_at = offset;
      const int peer = get_bounded_int(
          bytes, offset, end, static_cast<std::uint64_t>(kMaxWireProcesses),
          "peer process id");
      if (peer == process)
        fail(peer_at, "send/deliver peer equals the acting process " +
                          std::to_string(peer));
      return static_cast<EventKind>(kind) == EventKind::kSend
                 ? StreamEvent::send(msg, process, peer)
                 : StreamEvent::deliver(msg, process, peer);
    }
    case EventKind::kCheckpoint: {
      const std::size_t index_at = offset;
      const int index = get_bounded_int(
          bytes, offset, end, static_cast<std::uint64_t>(kMaxWireIndex),
          "checkpoint index");
      if (index < 1) fail(index_at, "checkpoint index 0 is the implicit initial checkpoint");
      return StreamEvent::checkpoint(process, index);
    }
  }
  fail(at, "unreachable event kind");  // the 2-bit kind covers all four
}

// Shared envelope parse: length prefix + session id, with the payload
// bounds fully validated. `payload_end` is also the frame end.
struct Envelope {
  SessionId session = 0;
  std::size_t events_at = 0;   // offset of the event_count varint
  std::size_t payload_end = 0;
};

Envelope parse_envelope(std::span<const std::uint8_t> bytes,
                        std::size_t offset) {
  if (offset >= bytes.size()) fail(offset, "empty input where a frame was expected");
  const std::size_t len_at = offset;
  const std::uint64_t payload =
      get_varint(bytes, offset, bytes.size(), "frame length");
  if (payload > kMaxFramePayload)
    fail(len_at, "frame payload of " + std::to_string(payload) +
                     " bytes exceeds the cap of " +
                     std::to_string(kMaxFramePayload));
  if (payload > bytes.size() - offset)
    fail(len_at, "frame length " + std::to_string(payload) +
                     " runs past the " + std::to_string(bytes.size() - offset) +
                     " remaining bytes");
  Envelope env;
  env.payload_end = offset + static_cast<std::size_t>(payload);
  env.session = get_varint(bytes, offset, env.payload_end, "session id");
  env.events_at = offset;
  return env;
}

}  // namespace

std::size_t encode_frame(SessionId session, std::span<const StreamEvent> events,
                         std::vector<std::uint8_t>& out) {
  RDT_REQUIRE(events.size() <= kMaxFrameEvents,
              "frame batch exceeds kMaxFrameEvents");
  // Encode the payload after a placeholder gap, then write the length
  // prefix where the gap allows — one pass, no second buffer.
  const std::size_t start = out.size();
  constexpr std::size_t kMaxPrefix = 4;  // varint(kMaxFramePayload) fits
  out.resize(start + kMaxPrefix);
  put_varint(session, out);
  put_varint(events.size(), out);
  for (const StreamEvent& e : events) encode_event(e, out);
  const std::size_t payload = out.size() - start - kMaxPrefix;
  RDT_REQUIRE(payload <= kMaxFramePayload,
              "encoded frame payload exceeds kMaxFramePayload");
  std::vector<std::uint8_t> prefix;
  prefix.reserve(kMaxPrefix);
  put_varint(payload, prefix);
  // Close the gap: shift the payload down over the unused prefix bytes.
  const std::size_t slack = kMaxPrefix - prefix.size();
  std::copy(prefix.begin(), prefix.end(), out.begin() + static_cast<std::ptrdiff_t>(start));
  if (slack > 0) {
    std::copy(out.begin() + static_cast<std::ptrdiff_t>(start + kMaxPrefix),
              out.end(),
              out.begin() + static_cast<std::ptrdiff_t>(start + prefix.size()));
    out.resize(out.size() - slack);
  }
  return out.size() - start;
}

void decode_frame(std::span<const std::uint8_t> bytes, std::size_t& offset,
                  Frame& out) {
  const Envelope env = parse_envelope(bytes, offset);
  std::size_t at = env.events_at;
  const std::size_t count_at = at;
  const std::uint64_t count =
      get_varint(bytes, at, env.payload_end, "event count");
  if (count > kMaxFrameEvents)
    fail(count_at, "frame of " + std::to_string(count) +
                       " events exceeds the cap of " +
                       std::to_string(kMaxFrameEvents));
  // The tightest event is one byte, so a count beyond the remaining payload
  // bytes can never complete — reject before reserving.
  if (count > env.payload_end - at)
    fail(count_at, "event count " + std::to_string(count) +
                       " cannot fit the " + std::to_string(env.payload_end - at) +
                       " remaining payload bytes");
  out.session = env.session;
  out.events.clear();
  out.events.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i)
    out.events.push_back(decode_event(bytes, at, env.payload_end));
  if (at != env.payload_end)
    fail(at, "frame payload has " + std::to_string(env.payload_end - at) +
                 " trailing bytes after the last event");
  offset = env.payload_end;
}

FrameHeader peek_frame(std::span<const std::uint8_t> bytes,
                       std::size_t offset) {
  const Envelope env = parse_envelope(bytes, offset);
  return {env.session, env.payload_end};
}

}  // namespace rdt::serve
