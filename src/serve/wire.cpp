#include "serve/wire.hpp"

#include <sstream>
#include <stdexcept>
#include <string>

#include "util/check.hpp"
#include "util/varint.hpp"

namespace rdt::serve {

namespace {

[[noreturn]] void fail(std::size_t offset, const std::string& what) {
  std::ostringstream os;
  os << "wire: byte " << offset << ": " << what;
  throw std::invalid_argument(os.str());
}

// The LEB128 primitives live in util/varint.hpp so the piggyback codec
// layer shares the exact encode/reject behavior; these wrappers pin the
// "wire:" error-message domain this format has always used.
void put_varint(std::uint64_t v, std::vector<std::uint8_t>& out) {
  varint::put(v, out);
}

std::uint64_t get_varint(std::span<const std::uint8_t> bytes,
                         std::size_t& offset, std::size_t end,
                         const char* what) {
  return varint::get(bytes, offset, end, "wire", what);
}

// Narrow a decoded varint into a non-negative int below `cap`.
int get_bounded_int(std::span<const std::uint8_t> bytes, std::size_t& offset,
                    std::size_t end, std::uint64_t cap, const char* what) {
  const std::size_t at = offset;
  const std::uint64_t v = get_varint(bytes, offset, end, what);
  if (v >= cap)
    fail(at, std::string(what) + " " + std::to_string(v) +
                 " exceeds the wire cap " + std::to_string(cap - 1));
  return static_cast<int>(v);
}

void encode_event(const StreamEvent& e, std::vector<std::uint8_t>& out) {
  RDT_REQUIRE(e.p >= 0 && e.p < kMaxWireProcesses,
              "stream event process id outside the wire range");
  const auto kind = static_cast<std::uint64_t>(e.kind);
  RDT_REQUIRE(kind < 4, "unknown stream event kind");
  put_varint((static_cast<std::uint64_t>(e.p) << 2) | kind, out);
  switch (e.kind) {
    case EventKind::kSend:
    case EventKind::kDeliver:
      RDT_REQUIRE(e.msg >= 0 && e.msg < kMaxWireIndex,
                  "message id outside the wire range");
      RDT_REQUIRE(e.q >= 0 && e.q < kMaxWireProcesses && e.q != e.p,
                  "peer process id outside the wire range");
      put_varint(static_cast<std::uint64_t>(e.msg), out);
      put_varint(static_cast<std::uint64_t>(e.q), out);
      return;
    case EventKind::kInternal:
      return;
    case EventKind::kCheckpoint:
      RDT_REQUIRE(e.index >= 1 && e.index < kMaxWireIndex,
                  "checkpoint index outside the wire range");
      put_varint(static_cast<std::uint64_t>(e.index), out);
      return;
  }
}

StreamEvent decode_event(std::span<const std::uint8_t> bytes,
                         std::size_t& offset, std::size_t end) {
  const std::size_t at = offset;
  const std::uint64_t header = get_varint(bytes, offset, end, "event header");
  const std::uint64_t kind = header & 3u;
  const std::uint64_t p = header >> 2;
  if (p >= static_cast<std::uint64_t>(kMaxWireProcesses))
    fail(at, "event process id " + std::to_string(p) +
                 " exceeds the wire cap");
  const auto process = static_cast<ProcessId>(p);
  switch (static_cast<EventKind>(kind)) {
    case EventKind::kInternal:
      return StreamEvent::internal(process);
    case EventKind::kSend:
    case EventKind::kDeliver: {
      const int msg = get_bounded_int(
          bytes, offset, end, static_cast<std::uint64_t>(kMaxWireIndex),
          "message id");
      const std::size_t peer_at = offset;
      const int peer = get_bounded_int(
          bytes, offset, end, static_cast<std::uint64_t>(kMaxWireProcesses),
          "peer process id");
      if (peer == process)
        fail(peer_at, "send/deliver peer equals the acting process " +
                          std::to_string(peer));
      return static_cast<EventKind>(kind) == EventKind::kSend
                 ? StreamEvent::send(msg, process, peer)
                 : StreamEvent::deliver(msg, process, peer);
    }
    case EventKind::kCheckpoint: {
      const std::size_t index_at = offset;
      const int index = get_bounded_int(
          bytes, offset, end, static_cast<std::uint64_t>(kMaxWireIndex),
          "checkpoint index");
      if (index < 1) fail(index_at, "checkpoint index 0 is the implicit initial checkpoint");
      return StreamEvent::checkpoint(process, index);
    }
  }
  fail(at, "unreachable event kind");  // the 2-bit kind covers all four
}

// Shared envelope parse: length prefix + session id, with the payload
// bounds fully validated. `payload_end` is also the frame end.
struct Envelope {
  SessionId session = 0;
  std::size_t events_at = 0;   // offset of the event_count varint
  std::size_t payload_end = 0;
};

Envelope parse_envelope(std::span<const std::uint8_t> bytes,
                        std::size_t offset) {
  if (offset >= bytes.size()) fail(offset, "empty input where a frame was expected");
  const std::size_t len_at = offset;
  const std::uint64_t payload =
      get_varint(bytes, offset, bytes.size(), "frame length");
  if (payload > kMaxFramePayload)
    fail(len_at, "frame payload of " + std::to_string(payload) +
                     " bytes exceeds the cap of " +
                     std::to_string(kMaxFramePayload));
  if (payload > bytes.size() - offset)
    fail(len_at, "frame length " + std::to_string(payload) +
                     " runs past the " + std::to_string(bytes.size() - offset) +
                     " remaining bytes");
  Envelope env;
  env.payload_end = offset + static_cast<std::size_t>(payload);
  env.session = get_varint(bytes, offset, env.payload_end, "session id");
  env.events_at = offset;
  return env;
}

std::size_t encode_frame_impl(SessionId session,
                              std::span<const StreamEvent> events,
                              const PiggybackSection* pb,
                              std::vector<std::uint8_t>& out) {
  RDT_REQUIRE(events.size() <= kMaxFrameEvents,
              "frame batch exceeds kMaxFrameEvents");
  if (pb != nullptr) {
    std::size_t sends = 0;
    for (const StreamEvent& e : events) sends += e.kind == EventKind::kSend;
    RDT_REQUIRE(pb->sizes.size() == sends,
                "piggyback section needs exactly one blob per send event");
    std::size_t total = 0;
    for (const std::uint32_t size : pb->sizes) total += size;
    RDT_REQUIRE(total == pb->bytes.size(),
                "piggyback blob sizes do not sum to the byte buffer");
    RDT_REQUIRE(pb->num_processes >= 1 &&
                    pb->num_processes <= kMaxCodecProcesses,
                "piggyback process count outside the codec range");
  }
  // Encode the payload after a placeholder gap, then write the length
  // prefix where the gap allows — one pass, no second buffer.
  const std::size_t start = out.size();
  constexpr std::size_t kMaxPrefix = 4;  // varint(kMaxFramePayload) fits
  out.resize(start + kMaxPrefix);
  put_varint(session, out);
  put_varint(events.size(), out);
  for (const StreamEvent& e : events) encode_event(e, out);
  if (pb != nullptr) {
    put_varint(static_cast<std::uint64_t>(pb->protocol), out);
    put_varint(static_cast<std::uint64_t>(pb->codec), out);
    put_varint(static_cast<std::uint64_t>(pb->num_processes), out);
    std::size_t consumed = 0;
    for (const std::uint32_t size : pb->sizes) {
      put_varint(size, out);
      out.insert(out.end(), pb->bytes.begin() + static_cast<std::ptrdiff_t>(consumed),
                 pb->bytes.begin() + static_cast<std::ptrdiff_t>(consumed + size));
      consumed += size;
    }
  }
  const std::size_t payload = out.size() - start - kMaxPrefix;
  RDT_REQUIRE(payload <= kMaxFramePayload,
              "encoded frame payload exceeds kMaxFramePayload");
  std::vector<std::uint8_t> prefix;
  prefix.reserve(kMaxPrefix);
  put_varint(payload, prefix);
  // Close the gap: shift the payload down over the unused prefix bytes.
  const std::size_t slack = kMaxPrefix - prefix.size();
  std::copy(prefix.begin(), prefix.end(), out.begin() + static_cast<std::ptrdiff_t>(start));
  if (slack > 0) {
    std::copy(out.begin() + static_cast<std::ptrdiff_t>(start + kMaxPrefix),
              out.end(),
              out.begin() + static_cast<std::ptrdiff_t>(start + prefix.size()));
    out.resize(out.size() - slack);
  }
  return out.size() - start;
}

}  // namespace

std::size_t encode_frame(SessionId session, std::span<const StreamEvent> events,
                         std::vector<std::uint8_t>& out) {
  return encode_frame_impl(session, events, nullptr, out);
}

std::size_t encode_frame(SessionId session, std::span<const StreamEvent> events,
                         const PiggybackSection& piggyback,
                         std::vector<std::uint8_t>& out) {
  return encode_frame_impl(session, events, &piggyback, out);
}

void decode_frame(std::span<const std::uint8_t> bytes, std::size_t& offset,
                  Frame& out) {
  const Envelope env = parse_envelope(bytes, offset);
  std::size_t at = env.events_at;
  const std::size_t count_at = at;
  const std::uint64_t count =
      get_varint(bytes, at, env.payload_end, "event count");
  if (count > kMaxFrameEvents)
    fail(count_at, "frame of " + std::to_string(count) +
                       " events exceeds the cap of " +
                       std::to_string(kMaxFrameEvents));
  // The tightest event is one byte, so a count beyond the remaining payload
  // bytes can never complete — reject before reserving.
  if (count > env.payload_end - at)
    fail(count_at, "event count " + std::to_string(count) +
                       " cannot fit the " + std::to_string(env.payload_end - at) +
                       " remaining payload bytes");
  out.session = env.session;
  out.events.clear();
  out.events.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i)
    out.events.push_back(decode_event(bytes, at, env.payload_end));
  // Remaining payload bytes are the optional piggyback section — anything
  // else would be trailing garbage, which the section parser rejects via
  // its own exact-consumption check.
  out.has_piggyback = at != env.payload_end;
  if (out.has_piggyback) {
    const std::size_t proto_at = at;
    const std::uint64_t proto =
        get_varint(bytes, at, env.payload_end, "piggyback protocol");
    if (proto >= all_protocol_kinds().size())
      fail(proto_at, "piggyback protocol id " + std::to_string(proto) +
                         " is not a registered kind");
    const std::size_t codec_at = at;
    const std::uint64_t codec =
        get_varint(bytes, at, env.payload_end, "piggyback codec");
    if (codec >= kNumPiggybackCodecKinds)
      fail(codec_at, "piggyback codec id " + std::to_string(codec) +
                         " is not a known codec");
    const std::size_t n_at = at;
    const int n = get_bounded_int(
        bytes, at, env.payload_end,
        static_cast<std::uint64_t>(kMaxCodecProcesses) + 1,
        "piggyback process count");
    if (n < 1) fail(n_at, "piggyback process count 0 names no computation");
    out.piggyback.protocol = static_cast<ProtocolKind>(proto);
    out.piggyback.codec = static_cast<PiggybackCodecKind>(codec);
    out.piggyback.num_processes = n;
    out.piggyback.bytes.clear();
    out.piggyback.sizes.clear();
    for (const StreamEvent& e : out.events) {
      if (e.kind != EventKind::kSend) continue;
      const std::size_t len_at = at;
      const std::uint64_t len =
          get_varint(bytes, at, env.payload_end, "piggyback blob length");
      if (len > env.payload_end - at)
        fail(len_at, "piggyback blob of " + std::to_string(len) +
                         " bytes runs past the " +
                         std::to_string(env.payload_end - at) +
                         " remaining payload bytes");
      out.piggyback.sizes.push_back(static_cast<std::uint32_t>(len));
      out.piggyback.bytes.insert(
          out.piggyback.bytes.end(), bytes.begin() + static_cast<std::ptrdiff_t>(at),
          bytes.begin() + static_cast<std::ptrdiff_t>(at + len));
      at += static_cast<std::size_t>(len);
    }
    if (at != env.payload_end)
      fail(at, "frame payload has " + std::to_string(env.payload_end - at) +
                   " trailing bytes after the piggyback section");
  }
  offset = env.payload_end;
}

FrameHeader peek_frame(std::span<const std::uint8_t> bytes,
                       std::size_t offset) {
  const Envelope env = parse_envelope(bytes, offset);
  return {env.session, env.payload_end};
}

}  // namespace rdt::serve
