// Multi-client workload driver for ServePool — the simulated serving load
// behind bench/bench_serve.cpp and the concurrency tests.
//
// run_clients() plays one recorded event stream into every session of a
// pool, the way N real clients would: `clients` producer threads own
// disjoint session ranges, chop the stream into wire frames of
// `batch_events`, and submit them round-robin across their sessions (so a
// shard sees interleaved traffic from many tenants, not one session at a
// time). Producers interleave *timed* live queries with their submits — a
// cheap query (is_rdt_so_far + stats) every cheap_query_stride frames and a
// recovery_line every recovery_query_stride — and the per-query latencies
// come back in the report for percentile aggregation.
//
// Every session receives the identical stream, which makes the pool
// self-checking: after drain(), each session must answer exactly like one
// standalone OnlineEngine fed the same events, so the report's summed
// answers must equal sessions x the standalone value (bench_serve fails the
// run otherwise; tests/serve_test.cpp checks the stronger per-session
// bit-identity on heterogeneous streams).
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <vector>

#include "serve/pool.hpp"

namespace rdt::serve {

struct DriverOptions {
  SessionId first_session = 1;  // sessions are first_session .. +sessions-1
  int sessions = 16;
  int clients = 2;              // producer threads, disjoint session ranges
  std::size_t batch_events = 64;   // events per wire frame
  int cheap_query_stride = 4;      // timed cheap query every k frames
  int recovery_query_stride = 32;  // timed recovery_line every k frames
  bool close_sessions = true;      // close + drain at the end of the run
  // When set, every frame also carries the piggyback section this
  // protocol's declared codec produces for the chunk's send events. The
  // sections are generated once per run (real protocol instances replayed
  // over the stream) and shared by all sessions — each session receives
  // the identical frame sequence, so each per-session decoder walks the
  // same shadow evolution the one generator-side encoder did.
  std::optional<ProtocolKind> piggyback;
};

struct DriverReport {
  long long frames = 0;            // frames submitted
  long long events = 0;            // events submitted (sessions x stream)
  long long cheap_queries = 0;
  long long recovery_queries = 0;
  double wall_seconds = 0.0;       // open_session -> drain() returning
  std::vector<double> cheap_query_us;     // one sample per timed query
  std::vector<double> recovery_query_us;
  // Summed final per-session answers — the equivalence anchors.
  long long rdt_sessions = 0;      // sessions with is_rdt_so_far() == true
  long long rollback_total = 0;    // sum of recovery_line().total_rollback
  long long events_consumed = 0;   // sum of engine-reported intake counts
  long long delivered_messages = 0;  // sum of stats().messages
  // Pool-side piggyback accounting, summed over shards after drain().
  long long piggyback_frames = 0;
  long long piggyback_bits = 0;
  long long piggyback_rejected = 0;
};

DriverReport run_clients(ServePool& pool, std::span<const StreamEvent> events,
                         const DriverOptions& options);

}  // namespace rdt::serve
