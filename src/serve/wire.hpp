// Compact binary wire format for StreamEvent batches — the ingest side of
// the multi-tenant serving pool (serve/pool.hpp).
//
// A client ships its checkpoint stream to the pool as *frames*: each frame
// carries one session's batch of events, length-prefixed so frames can be
// concatenated into a single byte stream and routed without decoding the
// payload. All integers are unsigned LEB128 varints (7 value bits per byte,
// high bit = continuation), so the common small ids cost one byte instead
// of the four a fixed-width encoding would spend:
//
//   frame   := varint(payload_bytes) payload
//   payload := varint(session_id) varint(event_count) event* [piggyback]
//   event   := varint(header) tail
//   header  := (process << 2) | kind      kind: 0 internal, 1 send,
//                                               2 deliver, 3 checkpoint
//   tail    := send/deliver: varint(msg) varint(peer)
//              internal:     (empty)
//              checkpoint:   varint(index)
//   piggyback := varint(protocol) varint(codec) varint(num_processes)
//                blob*                 one blob per send event, in order
//   blob    := varint(byte_count) bytes
//
// The event kind rides in the low two bits of the first varint, so an
// internal event of a small process id is a single byte and a send in an
// 8-process session is three.
//
// The optional piggyback section ships the control data each send event
// carries, already encoded by the named PiggybackCodec (protocols/
// codec.hpp) — present exactly when payload bytes remain after the last
// event. The wire layer treats the blobs as opaque; the serving pool
// decodes them with a per-session codec so serve traffic exercises the
// same decode path the replay engine measures.
//
// The decoder handles untrusted bytes and is hardened like ccp/pattern_io:
// every size is capped before any allocation (kMaxFramePayload,
// kMaxFrameEvents, kMaxWireProcesses, kMaxWireIndex), truncation at any
// point is a distinct error, a frame's payload must be consumed exactly
// (trailing garbage inside the length prefix is rejected), and every
// std::invalid_argument carries the absolute byte offset of the fault.
// Malformed input NEVER produces UB or a partially valid Frame
// (tests/fuzz/fuzz_wire.cpp keeps this honest).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "online/engine.hpp"
#include "protocols/codec.hpp"
#include "protocols/protocol.hpp"

namespace rdt::serve {

// A serving-pool tenant. Ids are opaque 64-bit values chosen by the client.
using SessionId = std::uint64_t;

// Hardening caps, checked before any allocation the input could size.
inline constexpr std::size_t kMaxFramePayload = std::size_t{1} << 22;
inline constexpr std::size_t kMaxFrameEvents = std::size_t{1} << 20;
inline constexpr int kMaxWireProcesses = 1 << 20;  // == kMaxIoProcesses
inline constexpr int kMaxWireIndex = 1 << 30;      // msg ids and ckpt indexes

// The optional control-data section of a frame: one codec-encoded blob per
// send event, stored back to back (`sizes[i]` bytes each) so a reused
// Frame decodes with no steady-state allocation. The wire layer validates
// the header ids and the blob framing; blob *contents* are opaque here and
// decoded by the receiver's PiggybackCodec.
struct PiggybackSection {
  ProtocolKind protocol = ProtocolKind::kNoForce;
  PiggybackCodecKind codec = PiggybackCodecKind::kFlat;
  int num_processes = 0;
  std::vector<std::uint8_t> bytes;
  std::vector<std::uint32_t> sizes;  // one entry per send event, in order
};

// One decoded frame. `events` is cleared and refilled by decode_frame, so a
// reused Frame decodes with no steady-state allocation. `piggyback` holds
// decoded control data when the frame carried the optional section
// (has_piggyback; otherwise its contents are stale from the previous use).
struct Frame {
  SessionId session = 0;
  std::vector<StreamEvent> events;
  bool has_piggyback = false;
  PiggybackSection piggyback;
};

// Appends one encoded frame to `out` and returns the bytes appended.
// Requires every event to be well-formed (valid kind, process/peer ids in
// [0, kMaxWireProcesses), msg/index in [0, kMaxWireIndex)) and the batch to
// fit the frame caps; violations throw std::invalid_argument.
std::size_t encode_frame(SessionId session, std::span<const StreamEvent> events,
                         std::vector<std::uint8_t>& out);

// Same, with the piggyback section appended. `piggyback.sizes` must carry
// exactly one entry per send event in `events` (their sum sized to
// `piggyback.bytes`), and num_processes must fit the codec layer's cap.
std::size_t encode_frame(SessionId session, std::span<const StreamEvent> events,
                         const PiggybackSection& piggyback,
                         std::vector<std::uint8_t>& out);

// Decodes the frame starting at `offset`. On success, fills `out`, advances
// `offset` to the first byte past the frame, and returns. On malformed or
// truncated input throws std::invalid_argument ("wire: byte N: ...") and
// leaves `offset` untouched.
void decode_frame(std::span<const std::uint8_t> bytes, std::size_t& offset,
                  Frame& out);

// Reads only the frame envelope at `offset` — the session id for routing
// and where the frame ends — without touching the event payload. Same error
// contract as decode_frame.
struct FrameHeader {
  SessionId session = 0;
  std::size_t frame_end = 0;  // offset of the first byte past the frame
};
FrameHeader peek_frame(std::span<const std::uint8_t> bytes, std::size_t offset);

}  // namespace rdt::serve
