#include "serve/pool.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>

#include "obs/hooks.hpp"
#include "protocols/registry.hpp"
#include "util/check.hpp"

namespace rdt::serve {

ServePool::ServePool(PoolOptions options) : options_(options) {
  RDT_REQUIRE(options_.shards >= 1, "need at least one shard");
  RDT_REQUIRE(options_.num_processes >= 1, "need at least one process");
  RDT_REQUIRE(options_.queue_frames >= 1, "need a queue of at least one frame");
  shards_.reserve(static_cast<std::size_t>(options_.shards));
  for (int i = 0; i < options_.shards; ++i) {
    auto shard = std::make_unique<Shard>();
    {
      // The worker is not running yet, but TSA checks the guarded writes.
      const MutexLock lock(shard->mu);
      shard->ring.resize(options_.queue_frames);
    }
    shards_.push_back(std::move(shard));
  }
  // Workers start only once the shard table is complete and immutable.
  for (auto& shard : shards_) {
    Shard& s = *shard;
    s.worker = std::thread([this, &s] { worker_loop(s); });
  }
}

ServePool::~ServePool() {
  for (auto& shard : shards_) {
    const MutexLock lock(shard->mu);
    shard->stopping = true;
    shard->nonempty.notify_all();
  }
  // Workers drain whatever is still queued, then exit.
  for (auto& shard : shards_)
    if (shard->worker.joinable()) shard->worker.join();
}

int ServePool::shard_of(SessionId id) const {
  // splitmix64 finalizer: adjacent session ids (the common client pattern)
  // must not pile onto one shard, so the route mixes before it reduces.
  std::uint64_t x = id + 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  x ^= x >> 31;
  return static_cast<int>(x % static_cast<std::uint64_t>(shards_.size()));
}

void ServePool::open_session(SessionId id) {
  open_session(id, options_.retention);
}

void ServePool::open_session(SessionId id, const RetentionPolicy& retention) {
  Shard& s = shard_for(id);
  std::shared_ptr<OnlineEngine> engine;
  bool recycled = false;
  {
    const MutexLock lock(s.mu);
    RDT_REQUIRE(s.sessions.find(id) == s.sessions.end(),
                "session id is already open on this pool");
    // Reuse guard: the shard mu is where every engine reference is minted,
    // so use_count() == 1 observed here proves no query still holds it.
    if (!s.free_engines.empty() && s.free_engines.back().use_count() == 1) {
      engine = std::move(s.free_engines.back());
      s.free_engines.pop_back();
      recycled = true;
    }
  }
  // Construction / reset runs outside the lock: both are O(n^2) in the
  // process count and must not stall the shard worker. A recycled engine is
  // reset under the *incoming* session's policy — the retention caps keep a
  // previous tenant's arenas from leaking capacity into this one.
  const EngineOptions engine_options{options_.num_processes, retention};
  if (recycled)
    engine->reset(engine_options);
  else
    engine = std::make_shared<OnlineEngine>(engine_options);
  const MutexLock lock(s.mu);
  const bool inserted =
      s.sessions
          .emplace(id, Session{std::move(engine),
                               std::make_shared<SessionCodec>(), false})
          .second;
  RDT_REQUIRE(inserted, "session id is already open on this pool");
  ++s.stats.sessions_opened;
  if (recycled) ++s.stats.engines_recycled;
}

void ServePool::push_item(Shard& shard, Item item) {
  const std::size_t slot = (shard.head + shard.count) % shard.ring.size();
  shard.ring[slot] = std::move(item);
  ++shard.count;
  shard.stats.max_queue_depth =
      std::max(shard.stats.max_queue_depth, shard.count);
  shard.nonempty.notify_one();
}

void ServePool::submit(std::span<const std::uint8_t> frame) {
  const FrameHeader header = peek_frame(frame, 0);
  RDT_REQUIRE(header.frame_end == frame.size(),
              "submit expects exactly one encoded frame");
  Shard& s = shard_for(header.session);
  const MutexLock lock(s.mu);
  std::shared_ptr<OnlineEngine> engine;
  std::shared_ptr<SessionCodec> codec;
  for (;;) {
    // Re-validate after every wait: the session can be closed (or the map
    // rehashed by another open) while this thread slept on backpressure.
    const auto it = s.sessions.find(header.session);
    RDT_REQUIRE(it != s.sessions.end() && !it->second.closing,
                "frame submitted for a session that is not open");
    if (s.count < s.ring.size()) {
      engine = it->second.engine;
      codec = it->second.codec;
      break;
    }
    s.space.wait(s.mu);
  }
  Item item;
  if (!s.buffer_pool.empty()) {
    item.bytes = std::move(s.buffer_pool.back());
    s.buffer_pool.pop_back();
  }
  item.bytes.assign(frame.begin(), frame.end());
  item.session = header.session;
  item.engine = std::move(engine);
  item.codec = std::move(codec);
  push_item(s, std::move(item));
}

void ServePool::close_session(SessionId id) {
  Shard& s = shard_for(id);
  const MutexLock lock(s.mu);
  const auto it = s.sessions.find(id);
  RDT_REQUIRE(it != s.sessions.end() && !it->second.closing,
              "close of a session that is not open");
  it->second.closing = true;  // later submits fail; queued frames still apply
  while (s.count == s.ring.size()) s.space.wait(s.mu);
  Item item;
  item.session = id;
  item.close = true;
  push_item(s, std::move(item));
}

void ServePool::drain() {
  for (auto& shard : shards_) {
    const MutexLock lock(shard->mu);
    while (shard->count > 0 || shard->busy) shard->idle.wait(shard->mu);
  }
}

void ServePool::worker_loop(Shard& s) {
  Frame scratch;  // reused across frames: zero steady-state allocation
  PiggybackScratch pb_scratch;
  for (;;) {
    Item item;
    {
      const MutexLock lock(s.mu);
      s.busy = false;
      if (s.count == 0) {
        s.idle.notify_all();
        while (s.count == 0 && !s.stopping) s.nonempty.wait(s.mu);
        if (s.count == 0) return;  // stopping, queue fully drained
      }
      item = std::move(s.ring[s.head]);
      s.head = (s.head + 1) % s.ring.size();
      --s.count;
      s.busy = true;
      s.space.notify_one();
    }
    if (item.close) {
      const MutexLock lock(s.mu);
      const auto it = s.sessions.find(item.session);
      // The closing flag blocks a second close and open_session rejects the
      // id while mapped, so the entry must still be here.
      RDT_ASSERT(it != s.sessions.end());
      s.free_engines.push_back(std::move(it->second.engine));
      s.sessions.erase(it);
      continue;
    }
    bool ok = true;
    bool pb_ok = true;
    bool pb_present = false;
    long long pb_bits = 0;
    try {
      std::size_t offset = 0;
      decode_frame(item.bytes, offset, scratch);
      item.engine->feed(scratch.events);
      // Control data rides behind the events: decode it through the
      // session codec so serve traffic exercises the exact path the
      // replay engine measures. A bad section is counted separately — the
      // events already applied stand, like a failing feed() batch tail.
      pb_present = scratch.has_piggyback;
      if (pb_present)
        pb_ok = apply_piggyback(*item.codec, scratch, pb_scratch, &pb_bits);
    } catch (const std::invalid_argument&) {
      // Envelope checks passed at submit, but the payload (or the stream's
      // own sequencing rules, enforced by feed) can still be bad. One bad
      // frame is the client's problem, not the pool's: count and drop it.
      ok = false;
    }
    // Drop the engine reference before parking, so an idle worker never
    // pins a closed session's engine against the reuse guard.
    item.engine.reset();
    item.codec.reset();
    const MutexLock lock(s.mu);
    if (ok) {
      ++s.stats.frames;
      s.stats.events += static_cast<long long>(scratch.events.size());
      if (pb_present && pb_ok) {
        ++s.stats.piggyback_frames;
        s.stats.piggyback_bits += pb_bits;
      }
      if (pb_present && !pb_ok) ++s.stats.piggyback_rejected;
    } else {
      ++s.stats.rejected;
    }
    s.buffer_pool.push_back(std::move(item.bytes));
  }
}

bool ServePool::apply_piggyback(SessionCodec& sc, const Frame& frame,
                                PiggybackScratch& scratch,
                                long long* bits) const {
  const PiggybackSection& pb = frame.piggyback;
  if (pb.num_processes != options_.num_processes) return false;
  if (sc.num_processes == 0) {
    const ProtocolInfo& info = ProtocolRegistry::instance().info(pb.protocol);
    sc.codec.reset(pb.codec, pb.num_processes, info.shape);
    sc.protocol = pb.protocol;
    sc.kind = pb.codec;
    sc.shape = info.shape;
    sc.num_processes = pb.num_processes;
  } else if (sc.protocol != pb.protocol || sc.kind != pb.codec) {
    // The delta codec's shadows are per-(protocol, codec) state; a stream
    // that changes either mid-session is out of contract. Unconfigure so
    // the client can start over cleanly.
    sc.num_processes = 0;
    return false;
  }
  const auto n = static_cast<std::size_t>(sc.num_processes);
  const std::size_t row_words = bitdetail::words_for(n);
  if (sc.shape.tdv && scratch.tdv.size() < n) scratch.tdv.resize(n);
  if (sc.shape.simple && scratch.simple.size() < row_words)
    scratch.simple.resize(row_words);
  if (sc.shape.causal && scratch.causal.size() < n * row_words)
    scratch.causal.resize(n * row_words);
  std::size_t start = 0;
  std::size_t blob = 0;
  for (const StreamEvent& e : frame.events) {
    if (e.kind != EventKind::kSend) continue;
    const std::uint32_t len = pb.sizes[blob++];
    if (e.p >= sc.num_processes || e.q >= sc.num_processes) {
      sc.num_processes = 0;
      return false;
    }
    PiggybackSlot slot;
    if (sc.shape.tdv) slot.tdv = {scratch.tdv.data(), n};
    if (sc.shape.simple) slot.simple = {scratch.simple.data(), n};
    if (sc.shape.causal) slot.causal = {scratch.causal.data(), n, n};
    if (sc.shape.index) slot.index = &scratch.index;
    std::size_t offset = 0;
    const std::span<const std::uint8_t> blob_bytes{pb.bytes.data() + start,
                                                   len};
    try {
      sc.codec.decode(e.p, e.q, blob_bytes, offset, slot);
    } catch (const std::invalid_argument&) {
      sc.num_processes = 0;
      return false;
    }
    if (offset != len) {  // trailing bytes inside the blob framing
      sc.num_processes = 0;
      return false;
    }
    *bits += 8LL * len;
    start += len;
  }
  return true;
}

std::shared_ptr<OnlineEngine> ServePool::engine_of(SessionId id) const {
  Shard& s = shard_for(id);
  const MutexLock lock(s.mu);
  const auto it = s.sessions.find(id);
  RDT_REQUIRE(it != s.sessions.end(),
              "query for a session that is not open");
  return it->second.engine;
}

bool ServePool::is_rdt_so_far(SessionId id) const {
  return engine_of(id)->is_rdt_so_far();
}

RecoveryResult ServePool::recovery_line(SessionId id) const {
  return engine_of(id)->recovery_line();
}

StatsResult ServePool::session_stats(SessionId id) const {
  return engine_of(id)->stats();
}

RetentionStats ServePool::session_retention(SessionId id) const {
  return engine_of(id)->retention_stats();
}

long long ServePool::events_consumed(SessionId id) const {
  return engine_of(id)->events_consumed();
}

ShardStats ServePool::shard_stats(int shard) const {
  RDT_REQUIRE(shard >= 0 && shard < num_shards(), "shard index out of range");
  Shard& s = *shards_[static_cast<std::size_t>(shard)];
  const MutexLock lock(s.mu);
  ShardStats out = s.stats;
  // Retention sampling: each engine's counters are lock-free relaxed loads,
  // so holding the shard mu here never blocks the worker's feed path.
  for (const auto& [id, session] : s.sessions) {
    const RetentionStats r = session.engine->retention_stats();
    out.compactions += r.compactions;
    out.evicted_checkpoints += r.evicted_checkpoints;
    out.resident_bytes += r.resident_bytes;
  }
  return out;
}

void ServePool::flush_metrics() const {
  if constexpr (!obs::kObsEnabled) return;
  obs::ObsSession* session = obs::ObsSession::current();
  if (session == nullptr) return;
  auto& m = session->metrics();
  for (int i = 0; i < num_shards(); ++i) {
    const ShardStats s = shard_stats(i);
    const std::string prefix = "serve.shard" + std::to_string(i) + ".";
    m.add(m.counter(prefix + "frames"), s.frames);
    m.add(m.counter(prefix + "events"), s.events);
    m.add(m.counter(prefix + "rejected"), s.rejected);
    m.add(m.counter(prefix + "piggyback.frames"), s.piggyback_frames);
    m.add(m.counter(prefix + "piggyback.bits"), s.piggyback_bits);
    m.add(m.counter(prefix + "piggyback.rejected"), s.piggyback_rejected);
    m.add(m.counter(prefix + "queue.max_depth"),
          static_cast<long long>(s.max_queue_depth));
    m.add(m.counter("serve.frames"), s.frames);
    m.add(m.counter("serve.events"), s.events);
    m.add(m.counter("serve.sessions.opened"), s.sessions_opened);
    m.add(m.counter("serve.engines.recycled"), s.engines_recycled);
    m.add(m.counter("serve.retention.compactions"), s.compactions);
    m.add(m.counter("serve.retention.evicted_checkpoints"),
          s.evicted_checkpoints);
    m.add(m.counter("serve.retention.resident_bytes"),
          static_cast<long long>(s.resident_bytes));
  }
}

}  // namespace rdt::serve
