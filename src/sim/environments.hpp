// The three computational environments of the papers' simulation study.
//
//  * Random (uniform) — every process alternates local computation with
//    sends to uniformly random peers; the anonymous point-to-point
//    environment of the study's first figure.
//  * Overlapping groups — processes belong to groups arranged in a ring
//    with `overlap` members shared between neighbouring groups; a process
//    only messages co-members. Models group-based middleware: traffic is
//    localized but dependencies leak across group boundaries through the
//    shared members (the study's Figure 8).
//  * Client/server — an external client (modeled as process 0) sends a
//    request to server S_1; each server either replies to its caller or,
//    with probability `forward_prob`, synchronously forwards the request to
//    the next server and waits. The causal past of a late message contains
//    almost the whole computation — the hardest case for dependency
//    tracking (the study's Figure 9).
//
// Basic (application-driven) checkpoints fire per process as a Poisson
// process with mean interval `basic_ckpt_mean`. All generation is
// deterministic in `seed`.
#pragma once

#include <cstdint>

#include "sim/trace.hpp"

namespace rdt {

struct RandomEnvConfig {
  int num_processes = 8;
  double duration = 1000.0;        // simulated time horizon for sends
  double send_gap_mean = 1.0;      // mean time between two sends of a process
  double delay_min = 0.05;         // minimum message transit time
  double delay_mean = 1.0;         // mean additional transit time
  double basic_ckpt_mean = 20.0;   // mean time between basic checkpoints
  // The model assumes nothing about channel order; setting this clamps each
  // channel's delivery times to be monotone (FIFO links) for the E1 channel-
  // discipline ablation.
  bool fifo_channels = false;
  std::uint64_t seed = 1;
};

Trace random_environment(const RandomEnvConfig& config);

struct GroupEnvConfig {
  int num_groups = 4;
  int group_size = 4;
  int overlap = 1;                 // members shared by neighbouring groups
  double duration = 1000.0;
  double send_gap_mean = 1.0;
  double delay_min = 0.05;
  double delay_mean = 1.0;
  double basic_ckpt_mean = 20.0;
  std::uint64_t seed = 1;

  // Ring of groups sharing `overlap` members: n = groups * (size - overlap).
  int num_processes() const { return num_groups * (group_size - overlap); }
};

Trace group_environment(const GroupEnvConfig& config);

struct ClientServerEnvConfig {
  int num_servers = 8;             // S_1..S_n; the client is process 0
  int num_requests = 200;
  double forward_prob = 0.5;       // chance a server forwards down the chain
  double service_mean = 1.0;       // local processing time at each server
  double delay_min = 0.05;
  double delay_mean = 0.5;
  double request_gap_mean = 2.0;   // client think time between requests
  double basic_ckpt_mean = 20.0;
  std::uint64_t seed = 1;

  int num_processes() const { return num_servers + 1; }
};

Trace client_server_environment(const ClientServerEnvConfig& config);

}  // namespace rdt
