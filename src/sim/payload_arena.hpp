// PayloadArena — replay-owned, reusable storage for piggybacked control data.
//
// Within one replay every message carries the same PayloadShape (all
// processes run the same ProtocolKind), so instead of one heap-allocated
// Piggyback per message the replay engine carves three flat planes:
//  * a TDV plane    — n CkptIndex entries per message, contiguous;
//  * a simple plane — one word-aligned n-bit row per message;
//  * a causal plane — one block-strided n x n bit matrix per message
//    (n word-aligned rows, matrices back to back);
// plus a scalar index plane for the BCS timestamp. slot(m)/view(m) are O(1)
// pointer arithmetic; reset() only reallocates when a later replay needs
// more capacity, so sweeping many seeds through one arena reaches a steady
// state with zero per-message heap allocations.
//
// Wire-codec mode: reset() with a PiggybackCodecKind routes every send
// through the real encode/decode path. send_slot(m) then hands out a
// one-message staging slot for the protocol to fill; commit_send(m, src,
// dest) encodes the staged payload with the codec, decodes the bytes back
// into message m's arena planes (what view(m) serves at delivery), and
// returns the measured wire bits. The codec scratch — per-channel delta
// shadows, the encode buffer, the staging planes — obeys the same
// grow-only, zero-steady-state-allocation discipline as the planes. Under
// RDT_AUDITS every commit cross-checks the decoded planes against the
// staged originals bit for bit: codecs change representation, never
// semantics.
//
// Slots are handed out uncleaned: the sending protocol fully overwrites
// every present field (the fill_payload contract), and a trace's delivery
// of message m always follows its send, so a view never observes stale
// words. The arena is not thread-safe; use one per worker thread.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "protocols/codec.hpp"
#include "protocols/payload.hpp"
#include "sim/trace.hpp"

namespace rdt {

class PayloadArena {
 public:
  // Prepare slots for `num_messages` messages of `shape` among
  // `num_processes` processes. Existing capacity is reused; contents become
  // unspecified. With a codec kind, sends must go through
  // send_slot()/commit_send() and the codec's channel shadows start fresh.
  void reset(int num_processes, PayloadShape shape, std::size_t num_messages,
             std::optional<PiggybackCodecKind> codec = std::nullopt);

  std::size_t capacity() const { return capacity_; }
  bool has_codec() const { return codec_.has_value(); }
  PiggybackCodecKind codec_kind() const { return *codec_; }

  PiggybackSlot slot(MsgId m);
  PiggybackView view(MsgId m) const;

  // Where on_send() writes: message m's planes directly (no codec), or the
  // staging planes (codec mode — commit_send() then moves them through the
  // wire encoding into message m's planes).
  PiggybackSlot send_slot(MsgId m);
  // Codec mode only: encode the staged payload for channel src -> dest,
  // decode it into message m's planes, and return the encoded size in
  // bits. Must be called exactly once per send_slot(), in trace send
  // order (the delta codec's shadows advance per channel).
  std::size_t commit_send(MsgId m, ProcessId src, ProcessId dest);

 private:
  std::size_t check(MsgId m) const {
    RDT_REQUIRE(m >= 0 && static_cast<std::size_t>(m) < capacity_,
                "message id outside the arena");
    return static_cast<std::size_t>(m);
  }
  PiggybackView staging_view() const;

  int n_ = 0;
  PayloadShape shape_{};
  std::size_t row_words_ = 0;  // words per n-bit row
  std::size_t capacity_ = 0;   // messages
  std::vector<CkptIndex> tdv_plane_;         // n * capacity
  std::vector<std::uint64_t> simple_plane_;  // row_words * capacity
  std::vector<std::uint64_t> causal_plane_;  // n * row_words * capacity
  std::vector<CkptIndex> index_plane_;       // capacity

  // Wire-codec scratch (codec mode only; all grow-only).
  std::optional<PiggybackCodecKind> codec_;
  PiggybackCodec wire_;
  std::vector<CkptIndex> staging_tdv_;          // n
  std::vector<std::uint64_t> staging_simple_;   // row_words
  std::vector<std::uint64_t> staging_causal_;   // n * row_words
  CkptIndex staging_index_ = 0;
  std::vector<std::uint8_t> encode_buf_;
};

}  // namespace rdt
