// PayloadArena — replay-owned, reusable storage for piggybacked control data.
//
// Within one replay every message carries the same PayloadShape (all
// processes run the same ProtocolKind), so instead of one heap-allocated
// Piggyback per message the replay engine carves three flat planes:
//  * a TDV plane    — n CkptIndex entries per message, contiguous;
//  * a simple plane — one word-aligned n-bit row per message;
//  * a causal plane — one block-strided n x n bit matrix per message
//    (n word-aligned rows, matrices back to back);
// plus a scalar index plane for the BCS timestamp. slot(m)/view(m) are O(1)
// pointer arithmetic; reset() only reallocates when a later replay needs
// more capacity, so sweeping many seeds through one arena reaches a steady
// state with zero per-message heap allocations.
//
// Slots are handed out uncleaned: the sending protocol fully overwrites
// every present field (the fill_payload contract), and a trace's delivery
// of message m always follows its send, so a view never observes stale
// words. The arena is not thread-safe; use one per worker thread.
#pragma once

#include <cstddef>
#include <vector>

#include "protocols/payload.hpp"
#include "sim/trace.hpp"

namespace rdt {

class PayloadArena {
 public:
  // Prepare slots for `num_messages` messages of `shape` among
  // `num_processes` processes. Existing capacity is reused; contents become
  // unspecified.
  void reset(int num_processes, PayloadShape shape, std::size_t num_messages);

  std::size_t capacity() const { return capacity_; }

  PiggybackSlot slot(MsgId m);
  PiggybackView view(MsgId m) const;

 private:
  std::size_t check(MsgId m) const {
    RDT_REQUIRE(m >= 0 && static_cast<std::size_t>(m) < capacity_,
                "message id outside the arena");
    return static_cast<std::size_t>(m);
  }

  int n_ = 0;
  PayloadShape shape_{};
  std::size_t row_words_ = 0;  // words per n-bit row
  std::size_t capacity_ = 0;   // messages
  std::vector<CkptIndex> tdv_plane_;         // n * capacity
  std::vector<std::uint64_t> simple_plane_;  // row_words * capacity
  std::vector<std::uint64_t> causal_plane_;  // n * row_words * capacity
  std::vector<CkptIndex> index_plane_;       // capacity
};

}  // namespace rdt
