// Multi-seed experiment driver shared by the benchmark harnesses: generate
// a trace per seed, replay every requested protocol over it, aggregate the
// overhead metrics across seeds.
#pragma once

#include <functional>
#include <optional>
#include <span>
#include <vector>

#include "sim/replay.hpp"
#include "util/stats.hpp"

namespace rdt {

struct ProtocolStats {
  ProtocolKind kind = ProtocolKind::kNoForce;
  Summary r_forced_per_basic;     // the papers' R metric
  Summary forced_per_message;
  Summary wire_bits;              // measured encoded bits per message
  Summary flat_bits;              // analytic flat-plane bits per message
  long long total_messages = 0;   // across seeds
  long long total_basic = 0;
  long long total_forced = 0;
};

// Runs `num_seeds` independent traces (seeds seed0, seed0+1, ...) through
// every protocol in `kinds`. The generator must honour its seed argument.
// Sweeps replay in counters-only mode through one reusable PayloadArena —
// patterns are never materialized, and the steady-state replay loop does
// not touch the heap. Every replay runs through the protocol's declared
// wire codec (ProtocolRegistry metadata), so wire_bits is a measured
// quantity; flat_bits keeps the analytic comparison column.
std::vector<ProtocolStats> sweep(
    const std::function<Trace(std::uint64_t seed)>& generate,
    std::span<const ProtocolKind> kinds, int num_seeds, std::uint64_t seed0 = 1);

// Same computation fanned out over `threads` worker threads with a fused
// (seed x protocol) work queue: each work item replays one protocol over
// one seed's trace. The trace is generated once per seed (under a per-slot
// mutex), shared *const* by the replays of that seed — replay() never mutates its
// Trace, see docs/api_tour.md — and released after its last replay. Each
// worker owns a private PayloadArena. Per-seed rows are folded in seed
// order, making the aggregate bit-identical to the serial sweep for any
// thread count. The generator must be callable concurrently — the built-in
// environments are, since each call owns its Rng.
std::vector<ProtocolStats> sweep_parallel(
    const std::function<Trace(std::uint64_t seed)>& generate,
    std::span<const ProtocolKind> kinds, int num_seeds, int threads,
    std::uint64_t seed0 = 1);

// Percentage reduction of forced checkpoints of `kind` w.r.t. `baseline`
// within a sweep result (positive = kind forces fewer). When the baseline
// forced no checkpoints the percentage is undefined unless `kind` also
// forced none (then it is 0.0): a baseline of zero with a non-zero
// comparison yields nullopt rather than masquerading as "no reduction".
std::optional<double> forced_reduction_percent(
    std::span<const ProtocolStats> stats, ProtocolKind kind,
    ProtocolKind baseline);

}  // namespace rdt
