#include "sim/trace.hpp"

#include <algorithm>
#include <numeric>

#include "util/check.hpp"

namespace rdt {

long long Trace::basic_ckpts() const {
  return std::count_if(ops.begin(), ops.end(), [](const TraceOp& op) {
    return op.kind == TraceOpKind::kBasicCkpt;
  });
}

Trace truncate_flush(const Trace& trace, double t) {
  TraceBuilder builder(trace.num_processes);
  for (const TraceOp& op : trace.ops) {
    switch (op.kind) {
      case TraceOpKind::kSend:
        if (op.time <= t) {
          const TraceMessage& m = trace.messages[static_cast<std::size_t>(op.msg)];
          builder.send(m.sender, m.receiver, m.send_time, m.deliver_time);
        }
        break;
      case TraceOpKind::kBasicCkpt:
        if (op.time <= t) builder.basic_ckpt(op.process, op.time);
        break;
      case TraceOpKind::kDeliver:
        break;  // implied by the kept sends
    }
  }
  return builder.build();
}

TraceBuilder::TraceBuilder(int num_processes) : n_(num_processes) {
  RDT_REQUIRE(num_processes >= 1, "need at least one process");
}

MsgId TraceBuilder::send(ProcessId from, ProcessId to, double send_time,
                         double deliver_time) {
  RDT_REQUIRE(from >= 0 && from < n_, "sender out of range");
  RDT_REQUIRE(to >= 0 && to < n_, "receiver out of range");
  RDT_REQUIRE(from != to, "channels connect distinct processes");
  RDT_REQUIRE(deliver_time > send_time, "delivery must follow the send");
  const MsgId id = static_cast<MsgId>(messages_.size());
  messages_.push_back({from, to, send_time, deliver_time});
  ops_.push_back({TraceOpKind::kSend, send_time, from, id});
  seqs_.push_back(seq_++);
  ops_.push_back({TraceOpKind::kDeliver, deliver_time, to, id});
  seqs_.push_back(seq_++);
  return id;
}

void TraceBuilder::basic_ckpt(ProcessId p, double time) {
  RDT_REQUIRE(p >= 0 && p < n_, "process out of range");
  ops_.push_back({TraceOpKind::kBasicCkpt, time, p, kNoMsg});
  seqs_.push_back(seq_++);
}

Trace TraceBuilder::build() {
  // Order by time; break ties by creation order so builds are deterministic
  // and a send always precedes its delivery (strictly later time).
  std::vector<std::size_t> order(ops_.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (ops_[a].time != ops_[b].time) return ops_[a].time < ops_[b].time;
    return seqs_[a] < seqs_[b];
  });

  Trace trace;
  trace.num_processes = n_;
  trace.ops.reserve(ops_.size());
  for (std::size_t idx : order) trace.ops.push_back(ops_[idx]);

  // Renumber messages in global send order so message ids coincide with the
  // ids a consumer assigning them in stream order (e.g. replay's
  // PatternBuilder) would produce.
  std::vector<MsgId> remap(messages_.size(), kNoMsg);
  MsgId next = 0;
  for (TraceOp& op : trace.ops)
    if (op.kind == TraceOpKind::kSend) remap[static_cast<std::size_t>(op.msg)] = next++;
  trace.messages.resize(messages_.size());
  for (std::size_t old = 0; old < messages_.size(); ++old)
    trace.messages[static_cast<std::size_t>(remap[old])] = messages_[old];
  for (TraceOp& op : trace.ops)
    if (op.msg != kNoMsg) op.msg = remap[static_cast<std::size_t>(op.msg)];

  ops_.clear();
  seqs_.clear();
  messages_.clear();
  seq_ = 0;
  return trace;
}

}  // namespace rdt
