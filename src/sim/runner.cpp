#include "sim/runner.hpp"

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <thread>

#include "obs/hooks.hpp"
#include "protocols/registry.hpp"
#include "util/check.hpp"
#include "util/thread_annotations.hpp"

namespace rdt {

namespace {

struct SeedMetrics {
  double r = 0.0;
  double fpm = 0.0;
  double wire_bits = 0.0;
  double flat_bits = 0.0;
  long long messages = 0;
  long long basic = 0;
  long long forced = 0;
};

// Sweeps only need the overhead counters, so they take the counters-only
// replay path (no PatternBuilder, no saved-TDV extraction) through a
// reusable arena: zero steady-state heap traffic per message. Payloads run
// through the protocol's declared wire codec so wire_bits is measured, not
// asserted; codecs never change the forced-checkpoint counters.
SeedMetrics measure(const Trace& trace, ProtocolKind kind,
                    PayloadArena& arena) {
  const PiggybackCodecKind codec =
      ProtocolRegistry::instance().info(kind).codec;
  const ReplayResult res = replay_metrics(trace, kind, &arena, codec);
  return {res.forced_per_basic(), res.forced_per_message(),
          res.wire_bits_per_message(), res.flat_bits_per_message(),
          res.messages, res.basic, res.forced};
}

// Folds the per-seed metric matrix (seed-major) into aggregate statistics;
// folding in seed order makes serial and parallel sweeps bit-identical.
std::vector<ProtocolStats> fold(std::span<const ProtocolKind> kinds,
                                const std::vector<std::vector<SeedMetrics>>& m) {
  std::vector<RunningStats> r(kinds.size());
  std::vector<RunningStats> fpm(kinds.size());
  std::vector<RunningStats> wire(kinds.size());
  std::vector<RunningStats> flat(kinds.size());
  std::vector<ProtocolStats> out(kinds.size());
  for (std::size_t i = 0; i < kinds.size(); ++i) out[i].kind = kinds[i];
  for (const auto& row : m) {
    RDT_ASSERT(row.size() == kinds.size());
    for (std::size_t i = 0; i < kinds.size(); ++i) {
      r[i].add(row[i].r);
      fpm[i].add(row[i].fpm);
      wire[i].add(row[i].wire_bits);
      flat[i].add(row[i].flat_bits);
      out[i].total_messages += row[i].messages;
      out[i].total_basic += row[i].basic;
      out[i].total_forced += row[i].forced;
    }
  }
  for (std::size_t i = 0; i < kinds.size(); ++i) {
    out[i].r_forced_per_basic = r[i].summary();
    out[i].forced_per_message = fpm[i].summary();
    out[i].wire_bits = wire[i].summary();
    out[i].flat_bits = flat[i].summary();
  }
  return out;
}

// One generated trace shared (read-only) by every protocol replay of its
// seed. The first worker to reach the seed generates the trace under the
// slot mutex; later workers acquire the same mutex (the happens-before
// edge) and then replay through a plain pointer, since nothing mutates the
// trace until the last replay. `remaining` counts outstanding protocol work
// items; the worker that finishes the last one releases the trace so memory
// stays bounded by the number of in-flight seeds, not the sweep size.
struct SeedSlot {
  AnnotatedMutex mu;
  bool generated RDT_GUARDED_BY(mu) = false;
  std::optional<Trace> trace RDT_GUARDED_BY(mu);
  std::atomic<int> remaining{0};
};

}  // namespace

std::vector<ProtocolStats> sweep(
    const std::function<Trace(std::uint64_t seed)>& generate,
    std::span<const ProtocolKind> kinds, int num_seeds, std::uint64_t seed0) {
  RDT_REQUIRE(num_seeds >= 1, "need at least one seed");
  RDT_TRACE_SPAN("sweep", "sweep");
  std::vector<std::vector<SeedMetrics>> matrix(
      static_cast<std::size_t>(num_seeds));
  PayloadArena arena;
  for (int s = 0; s < num_seeds; ++s) {
    const Trace trace = generate(seed0 + static_cast<std::uint64_t>(s));
    auto& row = matrix[static_cast<std::size_t>(s)];
    row.reserve(kinds.size());
    for (ProtocolKind kind : kinds) row.push_back(measure(trace, kind, arena));
  }
  return fold(kinds, matrix);
}

std::vector<ProtocolStats> sweep_parallel(
    const std::function<Trace(std::uint64_t seed)>& generate,
    std::span<const ProtocolKind> kinds, int num_seeds, int threads,
    std::uint64_t seed0) {
  RDT_REQUIRE(num_seeds >= 1, "need at least one seed");
  RDT_REQUIRE(threads >= 1, "need at least one thread");
  RDT_REQUIRE(!kinds.empty(), "need at least one protocol");
  RDT_TRACE_SPAN("sweep", "sweep_parallel");

  const auto num_kinds = static_cast<int>(kinds.size());
  const long long num_items =
      static_cast<long long>(num_seeds) * static_cast<long long>(num_kinds);
  std::vector<std::vector<SeedMetrics>> matrix(
      static_cast<std::size_t>(num_seeds));
  for (auto& row : matrix)
    row.resize(kinds.size());

  // Fused (seed x protocol) work queue: finer-grained than per-seed tasks,
  // so a slow protocol on the last seed no longer serializes the tail of
  // the sweep. Work items are handed out seed-major, which keeps the
  // replays of one seed temporally clustered and lets the trace be freed
  // as soon as its last protocol finishes.
  std::vector<SeedSlot> slots(static_cast<std::size_t>(num_seeds));
  for (auto& slot : slots) slot.remaining.store(num_kinds);

  std::atomic<long long> next{0};
  auto worker = [&] {
    RDT_TRACE_SPAN("sweep", "sweep.worker");
    // Observability (compiled out by default): the per-item latency and the
    // queue-wait — time this worker spends blocked on another worker's
    // trace generation inside the slot's critical section — as histograms.
    obs::ObsSession* session = nullptr;
    obs::HistogramId h_item = 0;
    obs::HistogramId h_wait = 0;
    if constexpr (obs::kObsEnabled) {
      session = obs::ObsSession::current();
      if (session != nullptr) {
        static const std::vector<long long> bounds =
            obs::exponential_bounds(24);
        h_item = session->metrics().histogram("sweep.item_us", bounds);
        h_wait = session->metrics().histogram("sweep.queue_wait_us", bounds);
      }
    }
    PayloadArena arena;  // per-worker; replays never share one concurrently
    for (long long w = next.fetch_add(1); w < num_items;
         w = next.fetch_add(1)) {
      const auto s = static_cast<std::size_t>(w / num_kinds);
      const auto k = static_cast<std::size_t>(w % num_kinds);
      SeedSlot& slot = slots[s];
      const std::int64_t t0 = session != nullptr ? session->now_us() : 0;
      const Trace* trace = nullptr;
      {
        const MutexLock lock(slot.mu);
        if (!slot.generated) {
          slot.trace.emplace(generate(seed0 + static_cast<std::uint64_t>(s)));
          slot.generated = true;
        }
        // Read-only until this seed's last replay drops it, and this worker
        // still holds one `remaining` count — the pointer cannot dangle.
        trace = &*slot.trace;
      }
      if (session != nullptr)
        session->metrics().record(h_wait, session->now_us() - t0);
      matrix[s][k] = measure(*trace, kinds[k], arena);
      if (session != nullptr)
        session->metrics().record(h_item, session->now_us() - t0);
      if (slot.remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        // Last replay of this seed: drop the trace. The acq_rel RMW orders
        // every replay's reads before this release.
        const MutexLock lock(slot.mu);
        slot.trace.reset();
      }
    }
  };
  {
    std::vector<std::jthread> pool;
    const int spawn = static_cast<int>(
        std::min(static_cast<long long>(threads), num_items));
    pool.reserve(static_cast<std::size_t>(spawn));
    for (int t = 0; t < spawn; ++t) pool.emplace_back(worker);
  }  // jthreads join here
  return fold(kinds, matrix);
}

std::optional<double> forced_reduction_percent(
    std::span<const ProtocolStats> stats, ProtocolKind kind,
    ProtocolKind baseline) {
  const ProtocolStats* a = nullptr;
  const ProtocolStats* b = nullptr;
  for (const ProtocolStats& s : stats) {
    if (s.kind == kind) a = &s;
    if (s.kind == baseline) b = &s;
  }
  RDT_REQUIRE(a != nullptr && b != nullptr, "protocol not present in sweep");
  if (b->total_forced == 0) {
    if (a->total_forced == 0) return 0.0;  // neither forced anything
    return std::nullopt;  // kind forced checkpoints the baseline avoided
  }
  return 100.0 * (1.0 - static_cast<double>(a->total_forced) /
                            static_cast<double>(b->total_forced));
}

}  // namespace rdt
