#include "sim/runner.hpp"

#include <atomic>
#include <thread>

#include "util/check.hpp"

namespace rdt {

namespace {

struct SeedMetrics {
  double r = 0.0;
  double fpm = 0.0;
  double bits = 0.0;
  long long messages = 0;
  long long basic = 0;
  long long forced = 0;
};

SeedMetrics measure(const Trace& trace, ProtocolKind kind) {
  const ReplayResult res = replay(trace, kind);
  return {res.forced_per_basic(), res.forced_per_message(),
          res.piggyback_bits_per_message(), res.messages,
          res.basic,              res.forced};
}

// Folds the per-seed metric matrix (seed-major) into aggregate statistics;
// folding in seed order makes serial and parallel sweeps bit-identical.
std::vector<ProtocolStats> fold(std::span<const ProtocolKind> kinds,
                                const std::vector<std::vector<SeedMetrics>>& m) {
  std::vector<RunningStats> r(kinds.size());
  std::vector<RunningStats> fpm(kinds.size());
  std::vector<RunningStats> bits(kinds.size());
  std::vector<ProtocolStats> out(kinds.size());
  for (std::size_t i = 0; i < kinds.size(); ++i) out[i].kind = kinds[i];
  for (const auto& row : m) {
    RDT_ASSERT(row.size() == kinds.size());
    for (std::size_t i = 0; i < kinds.size(); ++i) {
      r[i].add(row[i].r);
      fpm[i].add(row[i].fpm);
      bits[i].add(row[i].bits);
      out[i].total_messages += row[i].messages;
      out[i].total_basic += row[i].basic;
      out[i].total_forced += row[i].forced;
    }
  }
  for (std::size_t i = 0; i < kinds.size(); ++i) {
    out[i].r_forced_per_basic = r[i].summary();
    out[i].forced_per_message = fpm[i].summary();
    out[i].piggyback_bits = bits[i].summary();
  }
  return out;
}

std::vector<SeedMetrics> measure_seed(
    const std::function<Trace(std::uint64_t)>& generate,
    std::span<const ProtocolKind> kinds, std::uint64_t seed) {
  const Trace trace = generate(seed);
  std::vector<SeedMetrics> row;
  row.reserve(kinds.size());
  for (ProtocolKind kind : kinds) row.push_back(measure(trace, kind));
  return row;
}

}  // namespace

std::vector<ProtocolStats> sweep(
    const std::function<Trace(std::uint64_t seed)>& generate,
    std::span<const ProtocolKind> kinds, int num_seeds, std::uint64_t seed0) {
  RDT_REQUIRE(num_seeds >= 1, "need at least one seed");
  std::vector<std::vector<SeedMetrics>> matrix(
      static_cast<std::size_t>(num_seeds));
  for (int s = 0; s < num_seeds; ++s)
    matrix[static_cast<std::size_t>(s)] =
        measure_seed(generate, kinds, seed0 + static_cast<std::uint64_t>(s));
  return fold(kinds, matrix);
}

std::vector<ProtocolStats> sweep_parallel(
    const std::function<Trace(std::uint64_t seed)>& generate,
    std::span<const ProtocolKind> kinds, int num_seeds, int threads,
    std::uint64_t seed0) {
  RDT_REQUIRE(num_seeds >= 1, "need at least one seed");
  RDT_REQUIRE(threads >= 1, "need at least one thread");
  std::vector<std::vector<SeedMetrics>> matrix(
      static_cast<std::size_t>(num_seeds));
  std::atomic<int> next{0};
  auto worker = [&] {
    for (int s = next.fetch_add(1); s < num_seeds; s = next.fetch_add(1))
      matrix[static_cast<std::size_t>(s)] =
          measure_seed(generate, kinds, seed0 + static_cast<std::uint64_t>(s));
  };
  {
    std::vector<std::jthread> pool;
    const int spawn = std::min(threads, num_seeds);
    pool.reserve(static_cast<std::size_t>(spawn));
    for (int t = 0; t < spawn; ++t) pool.emplace_back(worker);
  }  // jthreads join here
  return fold(kinds, matrix);
}

std::optional<double> forced_reduction_percent(
    std::span<const ProtocolStats> stats, ProtocolKind kind,
    ProtocolKind baseline) {
  const ProtocolStats* a = nullptr;
  const ProtocolStats* b = nullptr;
  for (const ProtocolStats& s : stats) {
    if (s.kind == kind) a = &s;
    if (s.kind == baseline) b = &s;
  }
  RDT_REQUIRE(a != nullptr && b != nullptr, "protocol not present in sweep");
  if (b->total_forced == 0) {
    if (a->total_forced == 0) return 0.0;  // neither forced anything
    return std::nullopt;  // kind forced checkpoints the baseline avoided
  }
  return 100.0 * (1.0 - static_cast<double>(a->total_forced) /
                            static_cast<double>(b->total_forced));
}

}  // namespace rdt
