// Textual serialization of application traces, so simulated workloads can
// be saved, shared and replayed across protocols later:
//
//   trace 3                         # process count
//   msg 1.5 2.25 0 2                # send-time deliver-time from to
//   ckpt 3.0 1                      # time process
//
// Round-tripping preserves the global operation order exactly (times and
// the builder's canonical renumbering are deterministic).
#pragma once

#include <iosfwd>
#include <string>

#include "sim/trace.hpp"

namespace rdt {

// Upper bound on the process count a file may declare (untrusted input must
// not trigger a giant allocation up-front).
inline constexpr int kMaxTraceIoProcesses = 1 << 20;

void write_trace(std::ostream& os, const Trace& trace);

// Parses the line format; throws std::invalid_argument on malformed input
// (unknown directives, out-of-range ids or processes, non-finite times, ...).
Trace read_trace(std::istream& is);

std::string trace_to_string(const Trace& trace);
Trace trace_from_string(const std::string& text);

}  // namespace rdt
