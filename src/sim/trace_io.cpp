#include "sim/trace_io.hpp"

#include <cmath>
#include <iomanip>
#include <memory>
#include <ostream>
#include <sstream>

#include "util/check.hpp"

namespace rdt {

void write_trace(std::ostream& os, const Trace& trace) {
  os << "trace " << trace.num_processes << '\n';
  // Full round-trip precision for the times.
  os << std::setprecision(17);
  for (const TraceOp& op : trace.ops) {
    switch (op.kind) {
      case TraceOpKind::kSend: {
        const TraceMessage& m = trace.messages[static_cast<std::size_t>(op.msg)];
        os << "msg " << m.send_time << ' ' << m.deliver_time << ' ' << m.sender
           << ' ' << m.receiver << '\n';
        break;
      }
      case TraceOpKind::kBasicCkpt:
        os << "ckpt " << op.time << ' ' << op.process << '\n';
        break;
      case TraceOpKind::kDeliver:
        break;  // implied by msg lines
    }
  }
}

Trace read_trace(std::istream& is) {
  std::string line;
  int line_no = 0;
  std::unique_ptr<TraceBuilder> builder;
  auto fail = [&](const std::string& what) {
    throw std::invalid_argument("trace parse error at line " +
                                std::to_string(line_no) + ": " + what);
  };
  // Attach the current line number to TraceBuilder precondition failures
  // (out-of-range process, self-send, delivery before send, ...).
  auto guarded = [&](auto&& fn) -> decltype(fn()) {
    try {
      return fn();
    } catch (const std::invalid_argument& e) {
      fail(e.what());
      throw;  // unreachable: fail() always throws
    }
  };

  while (std::getline(is, line)) {
    ++line_no;
    if (const auto hash = line.find('#'); hash != std::string::npos)
      line.erase(hash);
    std::istringstream ls(line);
    std::string word;
    if (!(ls >> word)) continue;
    if (word == "trace") {
      if (builder) fail("duplicate 'trace' directive");
      int n = 0;
      if (!(ls >> n) || n < 1) fail("invalid process count");
      if (n > kMaxTraceIoProcesses) fail("process count exceeds the format limit");
      builder = std::make_unique<TraceBuilder>(n);
      continue;
    }
    if (!builder) fail("'trace' directive must come first");
    if (word == "msg") {
      double send_t = 0, deliver_t = 0;
      ProcessId from = -1, to = -1;
      if (!(ls >> send_t >> deliver_t >> from >> to))
        fail("msg needs <send-t> <deliver-t> <from> <to>");
      // Non-finite times would poison the builder's sort comparator (NaNs
      // break strict weak ordering) — reject them at the boundary.
      if (!std::isfinite(send_t) || !std::isfinite(deliver_t))
        fail("message times must be finite");
      guarded([&] { builder->send(from, to, send_t, deliver_t); });
    } else if (word == "ckpt") {
      double t = 0;
      ProcessId p = -1;
      if (!(ls >> t >> p)) fail("ckpt needs <time> <process>");
      if (!std::isfinite(t)) fail("checkpoint time must be finite");
      guarded([&] { builder->basic_ckpt(p, t); });
    } else {
      fail("unknown directive '" + word + "'");
    }
  }
  if (!builder) throw std::invalid_argument("trace parse error: empty input");
  return builder->build();
}

std::string trace_to_string(const Trace& trace) {
  std::ostringstream os;
  write_trace(os, trace);
  return os.str();
}

Trace trace_from_string(const std::string& text) {
  std::istringstream is(text);
  return read_trace(is);
}

}  // namespace rdt
