#include "sim/payload_arena.hpp"

#include "util/check.hpp"

namespace rdt {

namespace {

// Grow-only resize: keeps capacity across seeds so a reused arena stops
// allocating once it has seen the largest trace of a sweep.
template <typename T>
void ensure_size(std::vector<T>& v, std::size_t size) {
  if (v.size() < size) v.resize(size);
}

}  // namespace

void PayloadArena::reset(int num_processes, PayloadShape shape,
                         std::size_t num_messages) {
  RDT_REQUIRE(num_processes >= 1, "need at least one process");
  n_ = num_processes;
  shape_ = shape;
  row_words_ = bitdetail::words_for(static_cast<std::size_t>(num_processes));
  capacity_ = num_messages;
  const auto n = static_cast<std::size_t>(num_processes);
  if (shape.tdv) ensure_size(tdv_plane_, n * num_messages);
  if (shape.simple) ensure_size(simple_plane_, row_words_ * num_messages);
  if (shape.causal) ensure_size(causal_plane_, n * row_words_ * num_messages);
  if (shape.index) ensure_size(index_plane_, num_messages);
}

PiggybackSlot PayloadArena::slot(MsgId m) {
  const std::size_t i = check(m);
  const auto n = static_cast<std::size_t>(n_);
  PiggybackSlot s;
  if (shape_.tdv) s.tdv = {tdv_plane_.data() + i * n, n};
  if (shape_.simple) s.simple = {simple_plane_.data() + i * row_words_, n};
  if (shape_.causal)
    s.causal = {causal_plane_.data() + i * n * row_words_, n, n};
  if (shape_.index) s.index = index_plane_.data() + i;
  return s;
}

PiggybackView PayloadArena::view(MsgId m) const {
  const std::size_t i = check(m);
  const auto n = static_cast<std::size_t>(n_);
  PiggybackView v;
  if (shape_.tdv) v.tdv = {tdv_plane_.data() + i * n, n};
  if (shape_.simple) v.simple = {simple_plane_.data() + i * row_words_, n};
  if (shape_.causal)
    v.causal = {causal_plane_.data() + i * n * row_words_, n, n};
  if (shape_.index) v.index = index_plane_[i];
  return v;
}

}  // namespace rdt
