#include "sim/payload_arena.hpp"

#include <cstring>

#include "util/check.hpp"

namespace rdt {

namespace {

// Grow-only resize: keeps capacity across seeds so a reused arena stops
// allocating once it has seen the largest trace of a sweep.
template <typename T>
void ensure_size(std::vector<T>& v, std::size_t size) {
  if (v.size() < size) v.resize(size);
}

}  // namespace

void PayloadArena::reset(int num_processes, PayloadShape shape,
                         std::size_t num_messages,
                         std::optional<PiggybackCodecKind> codec) {
  RDT_REQUIRE(num_processes >= 1, "need at least one process");
  n_ = num_processes;
  shape_ = shape;
  row_words_ = bitdetail::words_for(static_cast<std::size_t>(num_processes));
  capacity_ = num_messages;
  const auto n = static_cast<std::size_t>(num_processes);
  if (shape.tdv) ensure_size(tdv_plane_, n * num_messages);
  if (shape.simple) ensure_size(simple_plane_, row_words_ * num_messages);
  if (shape.causal) ensure_size(causal_plane_, n * row_words_ * num_messages);
  if (shape.index) ensure_size(index_plane_, num_messages);
  codec_ = codec;
  if (codec_) {
    wire_.reset(*codec_, num_processes, shape);
    if (shape.tdv) ensure_size(staging_tdv_, n);
    if (shape.simple) ensure_size(staging_simple_, row_words_);
    if (shape.causal) ensure_size(staging_causal_, n * row_words_);
  }
}

PiggybackSlot PayloadArena::slot(MsgId m) {
  const std::size_t i = check(m);
  const auto n = static_cast<std::size_t>(n_);
  PiggybackSlot s;
  if (shape_.tdv) s.tdv = {tdv_plane_.data() + i * n, n};
  if (shape_.simple) s.simple = {simple_plane_.data() + i * row_words_, n};
  if (shape_.causal)
    s.causal = {causal_plane_.data() + i * n * row_words_, n, n};
  if (shape_.index) s.index = index_plane_.data() + i;
  return s;
}

PiggybackView PayloadArena::view(MsgId m) const {
  const std::size_t i = check(m);
  const auto n = static_cast<std::size_t>(n_);
  PiggybackView v;
  if (shape_.tdv) v.tdv = {tdv_plane_.data() + i * n, n};
  if (shape_.simple) v.simple = {simple_plane_.data() + i * row_words_, n};
  if (shape_.causal)
    v.causal = {causal_plane_.data() + i * n * row_words_, n, n};
  if (shape_.index) v.index = index_plane_[i];
  return v;
}

PiggybackSlot PayloadArena::send_slot(MsgId m) {
  if (!codec_) return slot(m);
  check(m);
  const auto n = static_cast<std::size_t>(n_);
  PiggybackSlot s;
  if (shape_.tdv) s.tdv = {staging_tdv_.data(), n};
  if (shape_.simple) s.simple = {staging_simple_.data(), n};
  if (shape_.causal) s.causal = {staging_causal_.data(), n, n};
  if (shape_.index) s.index = &staging_index_;
  return s;
}

PiggybackView PayloadArena::staging_view() const {
  const auto n = static_cast<std::size_t>(n_);
  PiggybackView v;
  if (shape_.tdv) v.tdv = {staging_tdv_.data(), n};
  if (shape_.simple) v.simple = {staging_simple_.data(), n};
  if (shape_.causal) v.causal = {staging_causal_.data(), n, n};
  if (shape_.index) v.index = staging_index_;
  return v;
}

std::size_t PayloadArena::commit_send(MsgId m, ProcessId src, ProcessId dest) {
  RDT_REQUIRE(codec_.has_value(), "commit_send() needs a wire codec");
  encode_buf_.clear();  // capacity retained — no steady-state allocation
  const PiggybackView staged = staging_view();
  const std::size_t bytes = wire_.encode(src, dest, staged, encode_buf_);
  std::size_t offset = 0;
  wire_.decode(src, dest, encode_buf_, offset, slot(m));
  RDT_CHECK(offset == encode_buf_.size(),
            "piggyback decode consumed a different byte count than encode "
            "produced");
  // The decode-back cross-check: the planes that came out of the wire must
  // be bit-identical to the planes that went in.
  if constexpr (kAuditsEnabled) {
    const PiggybackView decoded = view(m);
    if (shape_.tdv)
      RDT_AUDIT(std::memcmp(decoded.tdv.data(), staged.tdv.data(),
                            staged.tdv.size() * sizeof(CkptIndex)) == 0,
                "wire codec roundtrip changed the TDV plane");
    if (shape_.simple)
      RDT_AUDIT(std::memcmp(decoded.simple.words(), staged.simple.words(),
                            decoded.simple.num_words() *
                                sizeof(std::uint64_t)) == 0,
                "wire codec roundtrip changed the simple plane");
    if (shape_.causal)
      RDT_AUDIT(std::memcmp(decoded.causal.row(0).words(),
                            staged.causal.row(0).words(),
                            decoded.causal.rows() * decoded.causal.row_words() *
                                sizeof(std::uint64_t)) == 0,
                "wire codec roundtrip changed the causal plane");
    RDT_AUDIT(decoded.index == staged.index,
              "wire codec roundtrip changed the scalar index");
  }
  return bytes * 8;
}

}  // namespace rdt
