#include "sim/environments.hpp"

#include <algorithm>
#include <vector>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace rdt {

namespace {

// Poisson basic-checkpoint stream for every process over [0, horizon].
void add_basic_ckpts(TraceBuilder& builder, int num_processes, double horizon,
                     double mean, Rng& rng) {
  for (ProcessId p = 0; p < num_processes; ++p) {
    double t = rng.exponential(mean);
    while (t < horizon) {
      builder.basic_ckpt(p, t);
      t += rng.exponential(mean);
    }
  }
}

double transit(double delay_min, double delay_mean, Rng& rng) {
  return delay_min + rng.exponential(delay_mean);
}

}  // namespace

Trace random_environment(const RandomEnvConfig& config) {
  RDT_REQUIRE(config.num_processes >= 2, "need at least two processes");
  RDT_REQUIRE(config.duration > 0 && config.send_gap_mean > 0 &&
                  config.delay_mean > 0 && config.basic_ckpt_mean > 0,
              "rates must be positive");
  Rng rng(config.seed);
  TraceBuilder builder(config.num_processes);

  // last_delivery[p][dest]: FIFO clamp per directed channel.
  std::vector<std::vector<double>> last_delivery(
      static_cast<std::size_t>(config.num_processes),
      std::vector<double>(static_cast<std::size_t>(config.num_processes), 0.0));
  for (ProcessId p = 0; p < config.num_processes; ++p) {
    double t = rng.exponential(config.send_gap_mean);
    while (t < config.duration) {
      ProcessId dest =
          static_cast<ProcessId>(rng.below(static_cast<std::uint64_t>(
              config.num_processes - 1)));
      if (dest >= p) ++dest;  // uniform over the other processes
      double arrive = t + transit(config.delay_min, config.delay_mean, rng);
      if (config.fifo_channels) {
        auto& last = last_delivery[static_cast<std::size_t>(p)]
                                  [static_cast<std::size_t>(dest)];
        arrive = std::max(arrive, last + 1e-9);
        last = arrive;
      }
      builder.send(p, dest, t, arrive);
      t += rng.exponential(config.send_gap_mean);
    }
  }
  add_basic_ckpts(builder, config.num_processes, config.duration,
                  config.basic_ckpt_mean, rng);
  return builder.build();
}

Trace group_environment(const GroupEnvConfig& config) {
  RDT_REQUIRE(config.num_groups >= 1 && config.group_size >= 2,
              "groups must have at least two members");
  RDT_REQUIRE(config.overlap >= 0 && config.overlap < config.group_size,
              "overlap must be smaller than the group size");
  const int n = config.num_processes();
  RDT_REQUIRE(n >= 2, "need at least two processes");
  RDT_REQUIRE(config.duration > 0 && config.send_gap_mean > 0 &&
                  config.delay_mean > 0 && config.basic_ckpt_mean > 0,
              "rates must be positive");

  // Group g covers `group_size` consecutive processes starting at
  // g * (group_size - overlap), wrapping around the ring, so neighbouring
  // groups share exactly `overlap` members.
  std::vector<std::vector<ProcessId>> peers(static_cast<std::size_t>(n));
  const int stride = config.group_size - config.overlap;
  for (int g = 0; g < config.num_groups; ++g) {
    for (int a = 0; a < config.group_size; ++a) {
      const ProcessId pa = static_cast<ProcessId>((g * stride + a) % n);
      for (int b = 0; b < config.group_size; ++b) {
        const ProcessId pb = static_cast<ProcessId>((g * stride + b) % n);
        if (pa != pb) peers[static_cast<std::size_t>(pa)].push_back(pb);
      }
    }
  }
  for (auto& v : peers) {
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
    RDT_ASSERT(!v.empty());
  }

  Rng rng(config.seed);
  TraceBuilder builder(n);
  for (ProcessId p = 0; p < n; ++p) {
    const auto& mine = peers[static_cast<std::size_t>(p)];
    double t = rng.exponential(config.send_gap_mean);
    while (t < config.duration) {
      const ProcessId dest = mine[rng.index(mine.size())];
      builder.send(p, dest, t, t + transit(config.delay_min, config.delay_mean, rng));
      t += rng.exponential(config.send_gap_mean);
    }
  }
  add_basic_ckpts(builder, n, config.duration, config.basic_ckpt_mean, rng);
  return builder.build();
}

Trace client_server_environment(const ClientServerEnvConfig& config) {
  RDT_REQUIRE(config.num_servers >= 1, "need at least one server");
  RDT_REQUIRE(config.num_requests >= 1, "need at least one request");
  RDT_REQUIRE(config.forward_prob >= 0.0 && config.forward_prob <= 1.0,
              "forward probability out of range");
  Rng rng(config.seed);
  const int n = config.num_processes();
  TraceBuilder builder(n);

  // Recursive synchronous request handling: server k (process id k) either
  // replies to its caller or forwards to k+1 and waits. Returns the time the
  // caller receives the reply.
  auto handle = [&](auto&& self, ProcessId caller, int server,
                    double send_time) -> double {
    const double arrive =
        send_time + transit(config.delay_min, config.delay_mean, rng);
    builder.send(caller, server, send_time, arrive);
    double done = arrive + rng.exponential(config.service_mean);
    if (server < config.num_servers && rng.bernoulli(config.forward_prob))
      done = self(self, server, server + 1, done) +
             rng.exponential(config.service_mean);
    const double reply_arrive =
        done + transit(config.delay_min, config.delay_mean, rng);
    builder.send(server, caller, done, reply_arrive);
    return reply_arrive;
  };

  double t = rng.exponential(config.request_gap_mean);
  for (int r = 0; r < config.num_requests; ++r) {
    t = handle(handle, /*caller=*/0, /*server=*/1, t);
    t += rng.exponential(config.request_gap_mean);
  }

  add_basic_ckpts(builder, n, t, config.basic_ckpt_mean, rng);
  return builder.build();
}

}  // namespace rdt
