#include "sim/replay.hpp"

#include <memory>
#include <utility>

#include "ccp/builder.hpp"
#include "util/check.hpp"

namespace rdt {

ReplayResult replay(const Trace& trace, ProtocolKind kind) {
  RDT_REQUIRE(trace.num_processes >= 1, "empty trace");

  std::vector<std::unique_ptr<CicProtocol>> procs;
  procs.reserve(static_cast<std::size_t>(trace.num_processes));
  for (ProcessId i = 0; i < trace.num_processes; ++i)
    procs.push_back(make_protocol(kind, trace.num_processes, i));

  PatternBuilder builder(trace.num_processes);
  std::vector<Piggyback> payloads(static_cast<std::size_t>(trace.num_messages()));
  std::vector<MsgId> msg_map(static_cast<std::size_t>(trace.num_messages()), kNoMsg);

  ReplayResult result;
  result.kind = kind;
  result.messages = trace.num_messages();

  for (const TraceOp& op : trace.ops) {
    CicProtocol& self = *procs[static_cast<std::size_t>(op.process)];
    switch (op.kind) {
      case TraceOpKind::kSend: {
        const TraceMessage& m = trace.messages[static_cast<std::size_t>(op.msg)];
        RDT_ASSERT(m.sender == op.process);
        Piggyback payload = self.on_send(m.receiver);
        result.piggyback_bits_total +=
            static_cast<double>(payload.wire_bits());
        payloads[static_cast<std::size_t>(op.msg)] = std::move(payload);
        msg_map[static_cast<std::size_t>(op.msg)] =
            builder.send(m.sender, m.receiver);
        if (self.checkpoint_after_send()) {
          self.on_forced_checkpoint();
          result.forced_ckpts.push_back(
              {op.process, builder.checkpoint(op.process)});
        }
        break;
      }
      case TraceOpKind::kDeliver: {
        const TraceMessage& m = trace.messages[static_cast<std::size_t>(op.msg)];
        RDT_ASSERT(m.receiver == op.process);
        const Piggyback& payload = payloads[static_cast<std::size_t>(op.msg)];
        if (self.must_force(payload, m.sender)) {
          self.on_forced_checkpoint();
          result.forced_ckpts.push_back(
              {op.process, builder.checkpoint(op.process)});
        }
        self.on_deliver(payload, m.sender);
        builder.deliver(msg_map[static_cast<std::size_t>(op.msg)]);
        break;
      }
      case TraceOpKind::kBasicCkpt:
        self.on_basic_checkpoint();
        builder.checkpoint(op.process);
        break;
    }
  }

  result.pattern = builder.build();
  result.saved_tdvs.resize(static_cast<std::size_t>(trace.num_processes));
  for (ProcessId i = 0; i < trace.num_processes; ++i) {
    const CicProtocol& p = *procs[static_cast<std::size_t>(i)];
    result.basic += p.basic_count();
    result.forced += p.forced_count();
    if (p.transmits_tdv()) {
      auto& row = result.saved_tdvs[static_cast<std::size_t>(i)];
      for (CkptIndex x = 0; x < p.current_interval(); ++x)
        row.push_back(p.saved_tdv(x));
    }
  }
  return result;
}

}  // namespace rdt
