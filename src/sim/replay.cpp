#include "sim/replay.hpp"

#include <algorithm>
#include <memory>
#include <string>

#include "ccp/audit.hpp"
#include "ccp/builder.hpp"
#include "core/tdv.hpp"
#include "obs/hooks.hpp"
#include "protocols/registry.hpp"
#include "util/check.hpp"

namespace rdt {

namespace {

// Audit-tier postconditions over a finished replay: the TDVs the protocol
// instances saved on the fly must equal the offline TdvAnalysis replay of
// the materialized pattern, and — for the RDT-ensuring protocols — every
// saved vector, read as the minimum global checkpoint of Corollary 4.5,
// must be consistent (the no-orphan postcondition).
void audit_replay_postconditions(const ReplayResult& result) {
  if constexpr (!kAuditsEnabled) return;
  const bool any_tdvs =
      std::any_of(result.saved_tdvs.begin(), result.saved_tdvs.end(),
                  [](const std::vector<Tdv>& row) { return !row.empty(); });
  if (!any_tdvs) return;

  const Pattern& p = result.pattern;
  const TdvAnalysis offline(p);
  const auto& rdt_kinds = rdt_protocol_kinds();
  const bool ensures_rdt =
      std::find(rdt_kinds.begin(), rdt_kinds.end(), result.kind) !=
      rdt_kinds.end();

  for (ProcessId i = 0; i < p.num_processes(); ++i) {
    const auto& row = result.saved_tdvs[static_cast<std::size_t>(i)];
    for (std::size_t x = 0; x < row.size(); ++x) {
      const CkptId c{i, static_cast<CkptIndex>(x)};
      RDT_AUDIT(row[x] == offline.at_ckpt(c),
                "protocol-saved TDV disagrees with the offline TdvAnalysis");
      if (ensures_rdt) {
        GlobalCkpt g;
        g.indices = row[x];
        g.indices[static_cast<std::size_t>(i)] = c.index;
        audit_consistent_global_ckpt(
            p, g, "a saved TDV of an RDT-ensuring protocol (Corollary 4.5)");
      }
    }
  }
}

// In an observability build with a session active, fold a finished replay's
// counters into the session registry, named per protocol id plus forcing
// predicate ("replay.bhmr.forced.c1", ...). Once per replay — the hot loop
// itself touches no registry state.
void flush_replay_metrics(const ReplayResult& result) {
  if constexpr (!obs::kObsEnabled) return;
  obs::ObsSession* session = obs::ObsSession::current();
  if (session == nullptr) return;
  auto& m = session->metrics();
  const std::string prefix =
      "replay." + ProtocolRegistry::instance().info(result.kind).id;
  m.add(m.counter(prefix + ".replays"), 1);
  m.add(m.counter(prefix + ".messages"), result.messages);
  m.add(m.counter(prefix + ".ckpt.basic"), result.basic);
  m.add(m.counter(prefix + ".ckpt.forced"), result.forced);
  for (std::size_t r = 1; r < kNumForceReasons; ++r) {
    if (result.forced_by_reason[r] == 0) continue;
    m.add(m.counter(prefix + ".forced." +
                    to_cstring(static_cast<ForceReason>(r))),
          result.forced_by_reason[r]);
  }
}

}  // namespace

ReplayResult replay(const Trace& trace, ProtocolKind kind,
                    const ReplayOptions& options) {
  RDT_REQUIRE(trace.num_processes >= 1, "empty trace");
  RDT_TRACE_SPAN("replay", "replay", "protocol",
                 ProtocolRegistry::instance().info(kind).id.c_str());

  // Audit builds always materialize: the postconditions cross-check the
  // protocols' on-line state against the offline pattern analysis. An online
  // subscriber forces it too — the stream is the pattern being recorded.
  const bool materialize = options.materialize_pattern || kAuditsEnabled ||
                           options.online != nullptr;
  const auto num_messages = static_cast<std::size_t>(trace.num_messages());

  const ProtocolRegistry& registry = ProtocolRegistry::instance();
  std::vector<std::unique_ptr<CicProtocol>> procs;
  procs.reserve(static_cast<std::size_t>(trace.num_processes));
  for (ProcessId i = 0; i < trace.num_processes; ++i) {
    procs.push_back(
        registry.create(kind, trace.num_processes, i, options.observer));
    if (!materialize) procs.back()->set_save_tdv_history(false);
  }

  // All processes run the same protocol, so every message carries the same
  // payload shape and its flat size is a per-replay constant. Measured wire
  // bits, when a codec is active, vary per message.
  const PayloadShape shape = procs.front()->payload_shape();
  const unsigned long long flat_bits_per_message =
      procs.front()->flat_piggyback_bits();

  PayloadArena local_arena;
  PayloadArena& arena = options.arena ? *options.arena : local_arena;
  arena.reset(trace.num_processes, shape, num_messages, options.wire_codec);

  PatternBuilder builder(trace.num_processes);  // cheap when unused
  builder.set_listener(options.online);
  std::vector<MsgId> msg_map;
  if (materialize) msg_map.assign(num_messages, kNoMsg);

  ReplayResult result;
  result.kind = kind;
  result.pattern_built = materialize;
  result.messages = trace.num_messages();
  result.wire_measured = options.wire_codec.has_value();
  if (materialize) result.forced_ckpts.reserve(num_messages);

  for (const TraceOp& op : trace.ops) {
    CicProtocol& self = *procs[static_cast<std::size_t>(op.process)];
    switch (op.kind) {
      case TraceOpKind::kSend: {
        const TraceMessage& m = trace.messages[static_cast<std::size_t>(op.msg)];
        RDT_ASSERT(m.sender == op.process);
        self.on_send(m.receiver, arena.send_slot(op.msg));
        result.flat_bits_total += flat_bits_per_message;
        if (arena.has_codec())
          result.wire_bits_total +=
              arena.commit_send(op.msg, m.sender, m.receiver);
        if (materialize)
          msg_map[static_cast<std::size_t>(op.msg)] =
              builder.send(m.sender, m.receiver);
        if (self.checkpoint_after_send()) {
          self.on_forced_checkpoint(ForceReason::kCheckpointAfterSend);
          result.forced_by_reason[static_cast<std::size_t>(
              ForceReason::kCheckpointAfterSend)] += 1;
          if (materialize)
            result.forced_ckpts.push_back(
                {op.process, builder.checkpoint(op.process)});
        }
        break;
      }
      case TraceOpKind::kDeliver: {
        const TraceMessage& m = trace.messages[static_cast<std::size_t>(op.msg)];
        RDT_ASSERT(m.receiver == op.process);
        const PiggybackView payload = arena.view(op.msg);
        if (const ForceReason reason = self.force_reason(payload, m.sender);
            reason != ForceReason::kNone) {
          self.on_forced_checkpoint(reason);
          result.forced_by_reason[static_cast<std::size_t>(reason)] += 1;
          if (materialize)
            result.forced_ckpts.push_back(
                {op.process, builder.checkpoint(op.process)});
        }
        self.on_deliver(payload, m.sender);
        if (materialize) builder.deliver(msg_map[static_cast<std::size_t>(op.msg)]);
        break;
      }
      case TraceOpKind::kBasicCkpt:
        self.on_basic_checkpoint();
        if (materialize) builder.checkpoint(op.process);
        break;
    }
  }

  if (materialize) {
    result.pattern = builder.build();
    result.saved_tdvs.resize(static_cast<std::size_t>(trace.num_processes));
  }
  for (ProcessId i = 0; i < trace.num_processes; ++i) {
    const CicProtocol& p = *procs[static_cast<std::size_t>(i)];
    result.basic += p.basic_count();
    result.forced += p.forced_count();
    if (materialize && p.transmits_tdv()) {
      auto& row = result.saved_tdvs[static_cast<std::size_t>(i)];
      row.reserve(static_cast<std::size_t>(p.current_interval()));
      for (CkptIndex x = 0; x < p.current_interval(); ++x)
        row.push_back(p.saved_tdv(x));
    }
  }
  if constexpr (kAuditsEnabled) audit_replay_postconditions(result);
  flush_replay_metrics(result);
  return result;
}

}  // namespace rdt
