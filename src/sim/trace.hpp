// Application traces — the protocol-independent half of a simulation.
//
// The papers' simulation model assumes checkpoints are instantaneous and
// piggybacked control data does not perturb the computation, so the
// application behaviour (who sends what to whom when, when basic
// checkpoints fire) is independent of the checkpointing protocol. We
// exploit that for exact run-for-run comparability: an *environment*
// generates a Trace once, and the replay engine (replay.hpp) runs every
// protocol over the identical trace, the protocol contributing only the
// forced checkpoints.
//
// A Trace is a time-ordered stream of operations; the builder validates the
// physical constraints (a message is delivered after it is sent, exactly
// once, to the process it was addressed to).
#pragma once

#include <vector>

#include "causality/ids.hpp"

namespace rdt {

enum class TraceOpKind { kSend, kDeliver, kBasicCkpt };

struct TraceOp {
  TraceOpKind kind = TraceOpKind::kBasicCkpt;
  double time = 0.0;
  ProcessId process = -1;  // where the operation happens
  MsgId msg = kNoMsg;      // for kSend / kDeliver
};

struct TraceMessage {
  ProcessId sender = -1;
  ProcessId receiver = -1;
  double send_time = 0.0;
  double deliver_time = 0.0;
};

struct Trace {
  int num_processes = 0;
  std::vector<TraceOp> ops;           // globally ordered by (time, tiebreak)
  std::vector<TraceMessage> messages;

  int num_messages() const { return static_cast<int>(messages.size()); }
  long long basic_ckpts() const;
};

// Prefix of the trace at time `t`, with in-flight messages flushed: keeps
// every operation at time <= t plus the deliveries of already-sent messages
// (at their original, possibly later, times). The result is a complete
// computation again — the natural "state of the system at time t" used to
// study how recovery lines progress as a run unfolds.
Trace truncate_flush(const Trace& trace, double t);

// Accumulates operations in any order; build() sorts them into a global
// order, checks message well-formedness and returns the immutable trace.
class TraceBuilder {
 public:
  explicit TraceBuilder(int num_processes);

  MsgId send(ProcessId from, ProcessId to, double send_time, double deliver_time);
  void basic_ckpt(ProcessId p, double time);

  Trace build();

 private:
  int n_;
  std::vector<TraceOp> ops_;
  std::vector<TraceMessage> messages_;
  long long seq_ = 0;            // creation order, used as the tiebreak
  std::vector<long long> seqs_;  // parallel to ops_
};

}  // namespace rdt
