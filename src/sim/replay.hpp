// Replay engine: runs a checkpointing protocol over an application trace.
//
// Walks the trace's global order once, driving one CicProtocol instance per
// process exactly as the paper's Figure 6 prescribes — payload capture at
// send, forced-checkpoint decision *before* each delivery, control-state
// merge after — and materializes the resulting checkpoint-and-communication
// pattern for offline analysis. Because the trace fixes the application
// behaviour, replaying different protocols over the same trace yields
// directly comparable forced-checkpoint counts.
//
// Two knobs make large sweeps cheap (see docs/benchmarks.md):
//  * ReplayOptions::materialize_pattern = false skips the PatternBuilder,
//    the forced-checkpoint inventory and the saved-TDV extraction — the
//    counters (messages/basic/forced/piggyback bits) are unchanged;
//  * ReplayOptions::wire_codec routes every payload through the real
//    encode/decode path of a PiggybackCodec and measures wire_bits_total;
//    analysis results are bit-identical to the flat path (cross-checked
//    per message under RDT_AUDITS);
//  * ReplayOptions::arena points at a caller-owned PayloadArena so the
//    steady-state replay loop performs no per-message heap allocation.
// Audit builds (RDT_AUDITS=ON) always materialize the pattern so the
// replay postconditions keep their offline cross-check.
#pragma once

#include <array>
#include <optional>
#include <vector>

#include "ccp/pattern.hpp"
#include "protocols/protocol.hpp"
#include "sim/payload_arena.hpp"
#include "sim/trace.hpp"

namespace rdt {

class PatternListener;  // ccp/builder.hpp

struct ReplayOptions {
  // Build the Pattern, the forced-checkpoint inventory and saved_tdvs.
  // When false (and audits are off) the replay returns counters only:
  // `pattern` stays empty, `forced_ckpts`/`saved_tdvs` stay empty, and the
  // protocols skip their per-checkpoint TDV history.
  bool materialize_pattern = true;

  // Optional reusable payload storage. When null the replay owns a
  // temporary arena internally; passing one amortizes its planes across
  // replays (zero steady-state allocations). Not thread-safe: one arena
  // per concurrent replay.
  PayloadArena* arena = nullptr;

  // Optional per-event observer, installed on every protocol instance for
  // the duration of the replay (non-owning; must outlive the call). The
  // observer sees each send, delivery and checkpoint — forced ones with the
  // ForceReason naming the predicate that fired.
  ProtocolObserver* observer = nullptr;

  // Optional wire codec. When set, every send stages its payload, encodes
  // it with this codec, and decodes the bytes back into the arena — the
  // planes a delivery reads went through the real wire representation, and
  // ReplayResult::wire_bits_total measures the encoded size. When unset
  // (the legacy flat path) payloads are written to the arena directly and
  // wire bits are not measured. Codecs never change analysis results.
  std::optional<PiggybackCodecKind> wire_codec = std::nullopt;

  // Optional pattern stream subscriber (non-owning; must outlive the call),
  // installed on the replay's PatternBuilder — typically an OnlineEngine
  // (online/engine.hpp), so live RDT/recovery/z-reach queries work while
  // the replay runs. Forces pattern materialization: the stream IS the
  // pattern being recorded.
  PatternListener* online = nullptr;
};

struct ReplayResult {
  ProtocolKind kind = ProtocolKind::kNoForce;
  Pattern pattern;  // includes basic + forced (+ virtual final) checkpoints

  // True when `pattern`/`forced_ckpts`/`saved_tdvs` were materialized.
  bool pattern_built = false;

  long long messages = 0;
  long long basic = 0;
  long long forced = 0;
  // Analytic flat-plane piggyback bits summed over sent messages (constant
  // per message for a given kind) — the labeled comparison column.
  unsigned long long flat_bits_total = 0;
  // Measured encoded bits summed over sent messages; only meaningful when
  // the replay ran with a wire codec (wire_measured).
  unsigned long long wire_bits_total = 0;
  bool wire_measured = false;

  // `forced` broken down by the predicate that fired (indexed by
  // ForceReason; the kNone slot stays zero). The entries sum to `forced` —
  // the per-predicate view the observability export reports.
  std::array<long long, kNumForceReasons> forced_by_reason{};
  long long forced_by(ForceReason reason) const {
    return forced_by_reason[static_cast<std::size_t>(reason)];
  }

  // The forced checkpoints, as (process, index) into `pattern` — input for
  // hindsight/ablation analyses (e.g. experiment E12).
  std::vector<CkptId> forced_ckpts;

  // saved_tdvs[i][x] = the TDV copy saved at C_{i,x} (empty per process for
  // protocols that do not track dependencies). Under an RDT-ensuring,
  // TDV-carrying protocol this is the minimum consistent global checkpoint
  // containing C_{i,x} (Corollary 4.5).
  std::vector<std::vector<Tdv>> saved_tdvs;

  // The paper's overhead metric R plus companions.
  double forced_per_basic() const {
    return basic > 0 ? static_cast<double>(forced) / static_cast<double>(basic)
                     : 0.0;
  }
  double forced_per_message() const {
    return messages > 0
               ? static_cast<double>(forced) / static_cast<double>(messages)
               : 0.0;
  }
  double flat_bits_per_message() const {
    return messages > 0 ? static_cast<double>(flat_bits_total) /
                              static_cast<double>(messages)
                        : 0.0;
  }
  double wire_bits_per_message() const {
    return messages > 0 && wire_measured
               ? static_cast<double>(wire_bits_total) /
                     static_cast<double>(messages)
               : 0.0;
  }
};

ReplayResult replay(const Trace& trace, ProtocolKind kind,
                    const ReplayOptions& options = {});

// Counters-only convenience wrapper: replay(trace, kind) without the
// pattern/TDV materialization (unless audits force it). Pass a codec kind
// to measure wire bits through the real encode/decode path.
inline ReplayResult replay_metrics(
    const Trace& trace, ProtocolKind kind, PayloadArena* arena = nullptr,
    std::optional<PiggybackCodecKind> wire_codec = std::nullopt) {
  return replay(trace, kind,
                {.materialize_pattern = false, .arena = arena,
                 .wire_codec = wire_codec});
}

}  // namespace rdt
