// Replay engine: runs a checkpointing protocol over an application trace.
//
// Walks the trace's global order once, driving one CicProtocol instance per
// process exactly as the paper's Figure 6 prescribes — payload capture at
// send, forced-checkpoint decision *before* each delivery, control-state
// merge after — and materializes the resulting checkpoint-and-communication
// pattern for offline analysis. Because the trace fixes the application
// behaviour, replaying different protocols over the same trace yields
// directly comparable forced-checkpoint counts.
#pragma once

#include <vector>

#include "ccp/pattern.hpp"
#include "protocols/protocol.hpp"
#include "sim/trace.hpp"

namespace rdt {

struct ReplayResult {
  ProtocolKind kind = ProtocolKind::kNoForce;
  Pattern pattern;  // includes basic + forced (+ virtual final) checkpoints

  long long messages = 0;
  long long basic = 0;
  long long forced = 0;
  double piggyback_bits_total = 0;  // sum over sent messages

  // The forced checkpoints, as (process, index) into `pattern` — input for
  // hindsight/ablation analyses (e.g. experiment E12).
  std::vector<CkptId> forced_ckpts;

  // saved_tdvs[i][x] = the TDV copy saved at C_{i,x} (empty per process for
  // protocols that do not track dependencies). Under an RDT-ensuring,
  // TDV-carrying protocol this is the minimum consistent global checkpoint
  // containing C_{i,x} (Corollary 4.5).
  std::vector<std::vector<Tdv>> saved_tdvs;

  // The paper's overhead metric R plus companions.
  double forced_per_basic() const {
    return basic > 0 ? static_cast<double>(forced) / static_cast<double>(basic)
                     : 0.0;
  }
  double forced_per_message() const {
    return messages > 0
               ? static_cast<double>(forced) / static_cast<double>(messages)
               : 0.0;
  }
  double piggyback_bits_per_message() const {
    return messages > 0 ? piggyback_bits_total / static_cast<double>(messages)
                        : 0.0;
  }
};

ReplayResult replay(const Trace& trace, ProtocolKind kind);

}  // namespace rdt
