#include "ccp/pattern.hpp"

#include <algorithm>
#include <ostream>

#include "util/check.hpp"

namespace rdt {

std::ostream& operator<<(std::ostream& os, EventKind kind) {
  switch (kind) {
    case EventKind::kInternal: return os << "internal";
    case EventKind::kSend: return os << "send";
    case EventKind::kDeliver: return os << "deliver";
    case EventKind::kCheckpoint: return os << "checkpoint";
  }
  return os << "?";
}

std::ostream& operator<<(std::ostream& os, const EventRef& e) {
  return os << "e(" << e.process << ',' << e.pos << ')';
}

int Pattern::num_events(ProcessId p) const {
  RDT_REQUIRE(p >= 0 && p < num_processes(), "process id out of range");
  return static_cast<int>(events_[static_cast<std::size_t>(p)].size());
}

const Event& Pattern::event(ProcessId p, EventIndex pos) const {
  RDT_REQUIRE(p >= 0 && p < num_processes(), "process id out of range");
  const auto& seq = events_[static_cast<std::size_t>(p)];
  RDT_REQUIRE(pos >= 0 && pos < static_cast<EventIndex>(seq.size()),
              "event position out of range");
  return seq[static_cast<std::size_t>(pos)];
}

const Message& Pattern::message(MsgId m) const {
  RDT_REQUIRE(m >= 0 && m < num_messages(), "message id out of range");
  return messages_[static_cast<std::size_t>(m)];
}

CkptIndex Pattern::last_ckpt(ProcessId p) const {
  RDT_REQUIRE(p >= 0 && p < num_processes(), "process id out of range");
  return static_cast<CkptIndex>(ckpt_event_pos_[static_cast<std::size_t>(p)].size());
}

EventIndex Pattern::ckpt_pos(ProcessId p, CkptIndex x) const {
  RDT_REQUIRE(x >= 0 && x <= last_ckpt(p), "checkpoint index out of range");
  if (x == 0) return -1;
  return ckpt_event_pos_[static_cast<std::size_t>(p)][static_cast<std::size_t>(x - 1)];
}

bool Pattern::ckpt_is_virtual(ProcessId p, CkptIndex x) const {
  RDT_REQUIRE(x >= 0 && x <= last_ckpt(p), "checkpoint index out of range");
  return x == last_ckpt(p) && x > 0 && final_is_virtual_[static_cast<std::size_t>(p)];
}

std::pair<EventIndex, EventIndex> Pattern::interval_span(ProcessId p, CkptIndex x) const {
  RDT_REQUIRE(x >= 1 && x <= last_ckpt(p), "interval index out of range");
  const EventIndex first = ckpt_pos(p, x - 1) + 1;
  const EventIndex last = ckpt_pos(p, x);  // position of the closing checkpoint
  RDT_CHECK(first >= 0 && first <= last,
            "interval bounds out of order — checkpoint positions not increasing");
  return {first, last};
}

int Pattern::node_id(const CkptId& c) const {
  RDT_REQUIRE(c.process >= 0 && c.process < num_processes(), "process id out of range");
  RDT_REQUIRE(c.index >= 0 && c.index <= last_ckpt(c.process),
              "checkpoint index out of range");
  return node_offset_[static_cast<std::size_t>(c.process)] + c.index;
}

CkptId Pattern::node_ckpt(int node) const {
  RDT_REQUIRE(node >= 0 && node < total_ckpts_, "node id out of range");
  // node_offset_ is strictly increasing: the owning process is the last one
  // whose offset is <= node. (A linear scan here is quadratic over all nodes
  // — visible once a pattern has very many processes.)
  const auto it = std::upper_bound(node_offset_.begin(), node_offset_.end(), node);
  const auto p = static_cast<ProcessId>(it - node_offset_.begin() - 1);
  return {p, node - node_offset_[static_cast<std::size_t>(p)]};
}

const VectorClock& Pattern::clock(const EventRef& e) const {
  ensure_clocks();
  RDT_REQUIRE(e.process >= 0 && e.process < num_processes(), "process id out of range");
  const auto& row = clocks_->rows[static_cast<std::size_t>(e.process)];
  RDT_REQUIRE(e.pos >= 0 && e.pos < static_cast<EventIndex>(row.size()),
              "event position out of range");
  return row[static_cast<std::size_t>(e.pos)];
}

bool Pattern::happened_before(const EventRef& a, const EventRef& b) const {
  if (a.process == b.process) return a.pos < b.pos;
  // a hb b iff a's own-component count is covered by b's clock.
  return clock(b).get(a.process) >= clock(a).get(a.process);
}

void Pattern::ensure_clocks() const {
  std::call_once(clocks_->once, [&] {
    auto& rows = clocks_->rows;
    rows.resize(static_cast<std::size_t>(num_processes()));
    for (ProcessId p = 0; p < num_processes(); ++p)
      rows[static_cast<std::size_t>(p)].resize(
          static_cast<std::size_t>(num_events(p)), VectorClock(num_processes()));

    std::vector<VectorClock> current(static_cast<std::size_t>(num_processes()),
                                     VectorClock(num_processes()));
    for (const EventRef& e : topo_) {
      auto& clk = current[static_cast<std::size_t>(e.process)];
      const Event& ev = event(e);
      if (ev.kind == EventKind::kDeliver)
        clk.merge(rows[static_cast<std::size_t>(message(ev.msg).sender)]
                      [static_cast<std::size_t>(message(ev.msg).send_pos)]);
      clk.tick(e.process);
      rows[static_cast<std::size_t>(e.process)][static_cast<std::size_t>(e.pos)] =
          clk;
    }
  });
}

}  // namespace rdt
