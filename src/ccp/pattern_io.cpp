#include "ccp/pattern_io.hpp"

#include <map>
#include <memory>
#include <ostream>
#include <sstream>
#include <vector>

#include "ccp/builder.hpp"
#include "util/check.hpp"

namespace rdt {

void write_pattern(std::ostream& os, const Pattern& p) {
  os << "processes " << p.num_processes() << '\n';
  for (const EventRef& e : p.topological_order()) {
    const Event& ev = p.event(e);
    switch (ev.kind) {
      case EventKind::kSend: {
        const Message& m = p.message(ev.msg);
        os << "send " << m.id << ' ' << m.sender << ' ' << m.receiver << '\n';
        break;
      }
      case EventKind::kDeliver:
        os << "deliver " << ev.msg << '\n';
        break;
      case EventKind::kInternal:
        os << "internal " << e.process << '\n';
        break;
      case EventKind::kCheckpoint:
        if (!p.ckpt_is_virtual(e.process, ev.ckpt))
          os << "checkpoint " << e.process << '\n';
        break;
    }
  }
}

Pattern read_pattern(std::istream& is) {
  std::string line;
  int n = -1;
  std::unique_ptr<PatternBuilder> builder;
  std::map<MsgId, MsgId> id_map;  // file id -> builder id
  int line_no = 0;

  auto fail = [&](const std::string& what) {
    throw std::invalid_argument("pattern parse error at line " +
                                std::to_string(line_no) + ": " + what);
  };
  // Attach the current line number to PatternBuilder precondition failures
  // (out-of-range process, self-send, re-delivery, ...) so a malformed file
  // is diagnosed like any other parse error.
  auto guarded = [&](auto&& fn) -> decltype(fn()) {
    try {
      return fn();
    } catch (const std::invalid_argument& e) {
      fail(e.what());
      throw;  // unreachable: fail() always throws
    }
  };

  while (std::getline(is, line)) {
    ++line_no;
    // Strip comments and whitespace-only lines.
    if (const auto hash = line.find('#'); hash != std::string::npos)
      line.erase(hash);
    std::istringstream ls(line);
    std::string word;
    if (!(ls >> word)) continue;

    if (word == "processes") {
      if (builder) fail("duplicate 'processes' directive");
      if (!(ls >> n) || n < 1) fail("invalid process count");
      // Bound up-front allocation: untrusted input must not be able to
      // request gigabytes via a giant process count.
      if (n > kMaxIoProcesses) fail("process count exceeds the format limit");
      builder = std::make_unique<PatternBuilder>(n);
      continue;
    }
    if (!builder) fail("'processes' directive must come first");

    if (word == "send") {
      MsgId id;
      ProcessId from, to;
      if (!(ls >> id >> from >> to)) fail("send needs <id> <from> <to>");
      if (id_map.contains(id)) fail("duplicate message id");
      id_map[id] = guarded([&] { return builder->send(from, to); });
    } else if (word == "deliver") {
      MsgId id;
      if (!(ls >> id)) fail("deliver needs <id>");
      const auto it = id_map.find(id);
      if (it == id_map.end()) fail("delivery of unknown message");
      guarded([&] { builder->deliver(it->second); });
    } else if (word == "internal") {
      ProcessId pid;
      if (!(ls >> pid)) fail("internal needs <process>");
      guarded([&] { builder->internal(pid); });
    } else if (word == "checkpoint") {
      ProcessId pid;
      if (!(ls >> pid)) fail("checkpoint needs <process>");
      guarded([&] { builder->checkpoint(pid); });
    } else {
      fail("unknown directive '" + word + "'");
    }
  }
  if (!builder) throw std::invalid_argument("pattern parse error: empty input");
  try {
    return builder->build();
  } catch (const std::invalid_argument& e) {
    // Undelivered messages or a causal cycle only surface at build time.
    throw std::invalid_argument(std::string("pattern parse error: ") + e.what());
  }
}

std::string pattern_to_string(const Pattern& p) {
  std::ostringstream os;
  write_pattern(os, p);
  return os.str();
}

Pattern pattern_from_string(const std::string& text) {
  std::istringstream is(text);
  return read_pattern(is);
}

std::string render_ascii(const Pattern& p) {
  // Assign each event a column = rank in the topological order, then print
  // fixed-width cells.
  std::vector<std::vector<std::string>> cells(
      static_cast<std::size_t>(p.num_processes()));
  const auto& topo = p.topological_order();

  std::vector<std::vector<int>> column(static_cast<std::size_t>(p.num_processes()));
  for (ProcessId i = 0; i < p.num_processes(); ++i)
    column[static_cast<std::size_t>(i)].resize(
        static_cast<std::size_t>(p.num_events(i)));
  for (std::size_t rank = 0; rank < topo.size(); ++rank)
    column[static_cast<std::size_t>(topo[rank].process)]
          [static_cast<std::size_t>(topo[rank].pos)] = static_cast<int>(rank);

  std::size_t width = 4;
  // Built by append, not operator+ chains: GCC 12 at -O3 flags the inlined
  // char_traits memcpy of `"S" + std::to_string(...)` with a spurious
  // -Wrestrict (PR105329), which -Werror turns fatal.
  auto label = [&](const Event& ev, ProcessId pid) -> std::string {
    std::string out;
    switch (ev.kind) {
      case EventKind::kSend:
        out += 'S';
        out += std::to_string(ev.msg);
        return out;
      case EventKind::kDeliver:
        out += 'D';
        out += std::to_string(ev.msg);
        return out;
      case EventKind::kInternal: return ".";
      case EventKind::kCheckpoint: {
        const bool virt = p.ckpt_is_virtual(pid, ev.ckpt);
        out += virt ? '(' : '[';
        out += std::to_string(ev.ckpt);
        out += virt ? ')' : ']';
        return out;
      }
    }
    return "?";
  };

  std::vector<std::vector<std::string>> grid(
      static_cast<std::size_t>(p.num_processes()),
      std::vector<std::string>(topo.size()));
  for (ProcessId i = 0; i < p.num_processes(); ++i)
    for (EventIndex pos = 0; pos < p.num_events(i); ++pos) {
      const std::string text = label(p.event(i, pos), i);
      width = std::max(width, text.size() + 1);
      grid[static_cast<std::size_t>(i)]
          [static_cast<std::size_t>(column[static_cast<std::size_t>(i)]
                                          [static_cast<std::size_t>(pos)])] = text;
    }

  std::ostringstream os;
  for (ProcessId i = 0; i < p.num_processes(); ++i) {
    os << 'P' << i << " [0]";
    for (const std::string& cell : grid[static_cast<std::size_t>(i)]) {
      std::string padded = cell.empty() ? std::string(width, '-')
                                        : cell + std::string(width - cell.size(), '-');
      os << '-' << padded;
    }
    os << '\n';
  }
  os << "legend: S<m> send, D<m> deliver, [x] checkpoint C_{i,x}, "
        "(x) virtual final checkpoint, . internal\n";
  return os.str();
}

}  // namespace rdt
