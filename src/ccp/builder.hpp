// PatternBuilder — the only way to construct a Pattern.
//
// Records events process by process in local order, then build() validates
// the computation (every message delivered exactly once, no causal cycle,
// channels connect distinct processes), closes trailing intervals with
// virtual final checkpoints, assigns interval indexes and computes the
// topological event order.
//
// Example (the paper's Figure 1, processes i=0, j=1, k=2):
//
//   PatternBuilder b(3);
//   MsgId m1 = b.send(0, 1);   // send in I_{i,1}
//   b.deliver(m1);             // delivered in I_{j,1}
//   b.checkpoint(0);           // C_{i,1}
//   ...
//   Pattern p = b.build();
#pragma once

#include <vector>

#include "ccp/pattern.hpp"

namespace rdt {

// Observer of a builder's append stream. A listener installed with
// PatternBuilder::set_listener() sees every recorded event in the exact
// order the builder records it — the hook the incremental analysis kernel
// (online/engine.hpp) subscribes to so queries work while the pattern is
// still being recorded. Callbacks fire after the builder has updated its own
// state, so message ids and checkpoint indexes match the eventual Pattern.
//
// The virtual final checkpoints build() appends to close trailing intervals
// are NOT reported: they are finalization artifacts of one build() call, not
// events of the recorded computation (an online consumer models them itself,
// as the engine does with its interval frontier).
class PatternListener {
 public:
  virtual ~PatternListener() = default;
  virtual void on_send(MsgId /*m*/, ProcessId /*sender*/,
                       ProcessId /*receiver*/) {}
  virtual void on_deliver(MsgId /*m*/, ProcessId /*sender*/,
                          ProcessId /*receiver*/) {}
  virtual void on_internal(ProcessId /*p*/) {}
  virtual void on_checkpoint(ProcessId /*p*/, CkptIndex /*index*/) {}
};

class PatternBuilder {
 public:
  // Policy for intervals still open when build() is called.
  enum class FinalCkpts {
    kAppendVirtual,   // close them with checkpoints flagged virtual (default)
    kRequireClosed,   // throw unless every process's trace ends on a checkpoint
  };

  explicit PatternBuilder(int num_processes);

  // Record a send event at `sender` addressed to `receiver`; the returned id
  // is used to place the matching delivery.
  MsgId send(ProcessId sender, ProcessId receiver);
  // Record the delivery of message m at its receiver (at the current end of
  // the receiver's local sequence).
  void deliver(MsgId m);
  // Record an internal event at p.
  void internal(ProcessId p);
  // Record a local checkpoint at p; returns its index x (first call -> 1).
  CkptIndex checkpoint(ProcessId p);

  int num_processes() const { return static_cast<int>(events_.size()); }

  // Install (or remove, with nullptr) a stream observer. Non-owning; the
  // listener must outlive the builder or be detached first. It survives
  // build(): a builder reused for a second pattern keeps notifying the same
  // listener, so consumers tied to one pattern should detach in between.
  void set_listener(PatternListener* listener) { listener_ = listener; }
  PatternListener* listener() const { return listener_; }

  // Validate and produce the immutable Pattern. The builder is left empty.
  Pattern build(FinalCkpts policy = FinalCkpts::kAppendVirtual);

 private:
  void check_process(ProcessId p) const;

  std::vector<std::vector<Event>> events_;
  std::vector<Message> messages_;
  std::vector<std::vector<EventIndex>> ckpt_event_pos_;
  PatternListener* listener_ = nullptr;
  int undelivered_ = 0;
};

}  // namespace rdt
