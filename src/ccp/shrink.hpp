// Counterexample shrinking for checkpoint-and-communication patterns.
//
// Property tests over randomized patterns produce large, noisy witnesses.
// shrink_pattern() greedily reduces a pattern while a caller-supplied
// predicate (e.g. "violates RDT") keeps holding, by repeatedly trying to
//  * drop a message (its send and delivery events),
//  * drop a checkpoint (merging the two adjacent intervals),
//  * drop an internal event,
// until a fixpoint. The result is a locally-minimal pattern: removing any
// single element breaks the property — usually small enough to read as a
// space-time diagram and turn into a regression fixture.
#pragma once

#include <functional>

#include "ccp/pattern.hpp"

namespace rdt {

using PatternPredicate = std::function<bool(const Pattern&)>;

struct ShrinkResult {
  Pattern pattern;       // locally minimal, still satisfying the predicate
  int rounds = 0;        // fixpoint iterations
  int removed_messages = 0;
  int removed_ckpts = 0;
  int removed_internal = 0;
};

// Requires predicate(input) to hold; throws std::invalid_argument otherwise.
ShrinkResult shrink_pattern(const Pattern& input,
                            const PatternPredicate& predicate);

// Rebuilds `input` without the given elements (used by the shrinker; also
// handy on its own for ablation-style "what breaks the property" queries).
// Dropping a checkpoint shifts later checkpoint indexes of that process
// down by one; dropped messages take both endpoints with them.
Pattern drop_elements(const Pattern& input, const std::vector<MsgId>& messages,
                      const std::vector<CkptId>& ckpts);

}  // namespace rdt
