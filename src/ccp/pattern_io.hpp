// Textual serialization of checkpoint-and-communication patterns.
//
// The format is a line-per-event stream in a causality-consistent order, so
// a file can be replayed straight into a PatternBuilder:
//
//   processes 3
//   send 0 1 2        # message id 0 from P_1 to P_2
//   checkpoint 1      # P_1 takes a local checkpoint
//   deliver 0
//   internal 2
//
// Virtual final checkpoints are not serialized (they are regenerated on
// parse). render_ascii() draws the usual space-time diagram used in the
// paper's figures, one row per process.
#pragma once

#include <iosfwd>
#include <string>

#include "ccp/pattern.hpp"

namespace rdt {

// Upper bound on the process count a file may declare: the parser handles
// untrusted input, and a giant count would otherwise force a giant
// allocation before any event is read.
inline constexpr int kMaxIoProcesses = 1 << 20;

// Writes p to os in the line format above.
void write_pattern(std::ostream& os, const Pattern& p);

// Parses the line format; throws std::invalid_argument on malformed input.
Pattern read_pattern(std::istream& is);

// Round-trip helpers.
std::string pattern_to_string(const Pattern& p);
Pattern pattern_from_string(const std::string& text);

// Human-readable space-time diagram: one row per process, S<m>/D<m> for
// send/delivery of message m, [x] for checkpoint C_{i,x} ((x) if virtual),
// '.' for internal events. Columns follow a topological order, so time flows
// left to right.
std::string render_ascii(const Pattern& p);

}  // namespace rdt
