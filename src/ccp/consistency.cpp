#include "ccp/consistency.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace rdt {

std::ostream& operator<<(std::ostream& os, const GlobalCkpt& g) {
  os << '{';
  for (std::size_t i = 0; i < g.indices.size(); ++i) {
    if (i > 0) os << ' ';
    os << "C(" << i << ',' << g.indices[i] << ')';
  }
  return os << '}';
}

void validate(const Pattern& p, const GlobalCkpt& g) {
  RDT_REQUIRE(static_cast<int>(g.indices.size()) == p.num_processes(),
              "global checkpoint needs exactly one local checkpoint per process");
  for (ProcessId i = 0; i < p.num_processes(); ++i) {
    const CkptIndex x = g.indices[static_cast<std::size_t>(i)];
    RDT_REQUIRE(x >= 0 && x <= p.last_ckpt(i), "checkpoint index out of range");
  }
}

bool is_orphan(const Pattern& p, MsgId m, CkptIndex sender_ckpt,
               CkptIndex receiver_ckpt) {
  const Message& msg = p.message(m);
  RDT_REQUIRE(sender_ckpt >= 0 && sender_ckpt <= p.last_ckpt(msg.sender),
              "sender checkpoint index out of range");
  RDT_REQUIRE(receiver_ckpt >= 0 && receiver_ckpt <= p.last_ckpt(msg.receiver),
              "receiver checkpoint index out of range");
  return msg.send_interval > sender_ckpt && msg.deliver_interval <= receiver_ckpt;
}

bool pair_consistent(const Pattern& p, const CkptId& a, const CkptId& b) {
  RDT_REQUIRE(a.process != b.process,
              "pair consistency is defined across distinct processes");
  for (const Message& m : p.messages()) {
    if (m.sender == a.process && m.receiver == b.process &&
        is_orphan(p, m.id, a.index, b.index))
      return false;
    if (m.sender == b.process && m.receiver == a.process &&
        is_orphan(p, m.id, b.index, a.index))
      return false;
  }
  return true;
}

bool consistent(const Pattern& p, const GlobalCkpt& g) {
  validate(p, g);
  for (const Message& m : p.messages()) {
    const CkptIndex x = g.indices[static_cast<std::size_t>(m.sender)];
    const CkptIndex y = g.indices[static_cast<std::size_t>(m.receiver)];
    if (m.send_interval > x && m.deliver_interval <= y) return false;
  }
  return true;
}

std::vector<MsgId> orphan_messages(const Pattern& p, const GlobalCkpt& g) {
  validate(p, g);
  std::vector<MsgId> result;
  for (const Message& m : p.messages()) {
    const CkptIndex x = g.indices[static_cast<std::size_t>(m.sender)];
    const CkptIndex y = g.indices[static_cast<std::size_t>(m.receiver)];
    if (m.send_interval > x && m.deliver_interval <= y) result.push_back(m.id);
  }
  return result;
}

bool leq(const GlobalCkpt& a, const GlobalCkpt& b) {
  RDT_REQUIRE(a.indices.size() == b.indices.size(), "size mismatch");
  for (std::size_t i = 0; i < a.indices.size(); ++i)
    if (a.indices[i] > b.indices[i]) return false;
  return true;
}

GlobalCkpt componentwise_min(const GlobalCkpt& a, const GlobalCkpt& b) {
  RDT_REQUIRE(a.indices.size() == b.indices.size(), "size mismatch");
  GlobalCkpt out = a;
  for (std::size_t i = 0; i < a.indices.size(); ++i)
    out.indices[i] = std::min(a.indices[i], b.indices[i]);
  return out;
}

GlobalCkpt componentwise_max(const GlobalCkpt& a, const GlobalCkpt& b) {
  RDT_REQUIRE(a.indices.size() == b.indices.size(), "size mismatch");
  GlobalCkpt out = a;
  for (std::size_t i = 0; i < a.indices.size(); ++i)
    out.indices[i] = std::max(a.indices[i], b.indices[i]);
  return out;
}

}  // namespace rdt
