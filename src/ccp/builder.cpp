#include "ccp/builder.hpp"

#include <utility>

#include "ccp/audit.hpp"
#include "util/check.hpp"

namespace rdt {

PatternBuilder::PatternBuilder(int num_processes) {
  RDT_REQUIRE(num_processes >= 1, "need at least one process");
  events_.resize(static_cast<std::size_t>(num_processes));
  ckpt_event_pos_.resize(static_cast<std::size_t>(num_processes));
}

void PatternBuilder::check_process(ProcessId p) const {
  RDT_REQUIRE(p >= 0 && p < num_processes(), "process id out of range");
}

MsgId PatternBuilder::send(ProcessId sender, ProcessId receiver) {
  check_process(sender);
  check_process(receiver);
  RDT_REQUIRE(sender != receiver, "channels connect distinct processes");
  const MsgId id = static_cast<MsgId>(messages_.size());
  Message m;
  m.id = id;
  m.sender = sender;
  m.receiver = receiver;
  m.send_pos = static_cast<EventIndex>(events_[static_cast<std::size_t>(sender)].size());
  events_[static_cast<std::size_t>(sender)].push_back({EventKind::kSend, id, -1, -1});
  messages_.push_back(m);
  ++undelivered_;
  if (listener_ != nullptr) listener_->on_send(id, sender, receiver);
  return id;
}

void PatternBuilder::deliver(MsgId m) {
  RDT_REQUIRE(m >= 0 && m < static_cast<MsgId>(messages_.size()),
              "unknown message id");
  Message& msg = messages_[static_cast<std::size_t>(m)];
  RDT_REQUIRE(msg.deliver_pos < 0, "message already delivered");
  msg.deliver_pos =
      static_cast<EventIndex>(events_[static_cast<std::size_t>(msg.receiver)].size());
  events_[static_cast<std::size_t>(msg.receiver)].push_back(
      {EventKind::kDeliver, m, -1, -1});
  --undelivered_;
  if (listener_ != nullptr) listener_->on_deliver(m, msg.sender, msg.receiver);
}

void PatternBuilder::internal(ProcessId p) {
  check_process(p);
  events_[static_cast<std::size_t>(p)].push_back({EventKind::kInternal, kNoMsg, -1, -1});
  if (listener_ != nullptr) listener_->on_internal(p);
}

CkptIndex PatternBuilder::checkpoint(ProcessId p) {
  check_process(p);
  auto& positions = ckpt_event_pos_[static_cast<std::size_t>(p)];
  const auto index = static_cast<CkptIndex>(positions.size() + 1);
  positions.push_back(static_cast<EventIndex>(events_[static_cast<std::size_t>(p)].size()));
  events_[static_cast<std::size_t>(p)].push_back(
      {EventKind::kCheckpoint, kNoMsg, index, -1});
  if (listener_ != nullptr) listener_->on_checkpoint(p, index);
  return index;
}

Pattern PatternBuilder::build(FinalCkpts policy) {
  RDT_REQUIRE(undelivered_ == 0,
              "every message must be delivered before build() — deliver() "
              "all pending sends first");

  Pattern p;
  p.final_is_virtual_.assign(static_cast<std::size_t>(num_processes()), false);

  // Close trailing intervals. The virtual final checkpoints are finalization
  // artifacts, not recorded events: the stream listener must not see them
  // (see PatternListener), so notifications pause for this loop.
  PatternListener* const saved_listener = listener_;
  listener_ = nullptr;
  for (ProcessId i = 0; i < num_processes(); ++i) {
    auto& seq = events_[static_cast<std::size_t>(i)];
    const bool closed = !seq.empty() && seq.back().kind == EventKind::kCheckpoint;
    if (!closed && !seq.empty()) {
      RDT_REQUIRE(policy == FinalCkpts::kAppendVirtual,
                  "process trace does not end with a checkpoint");
      checkpoint(i);
      p.final_is_virtual_[static_cast<std::size_t>(i)] = true;
    }
  }
  listener_ = saved_listener;

  p.events_ = std::move(events_);
  p.messages_ = std::move(messages_);
  p.ckpt_event_pos_ = std::move(ckpt_event_pos_);
  events_.assign(static_cast<std::size_t>(num_processes()), {});
  messages_.clear();
  ckpt_event_pos_.assign(static_cast<std::size_t>(num_processes()), {});

  // Interval assignment: an event after x checkpoints lives in I_{i,x+1}.
  p.total_events_ = 0;
  for (ProcessId i = 0; i < p.num_processes(); ++i) {
    CkptIndex seen = 0;
    for (auto& ev : p.events_[static_cast<std::size_t>(i)]) {
      if (ev.kind == EventKind::kCheckpoint)
        ++seen;
      else
        ev.interval = seen + 1;
      ++p.total_events_;
    }
  }

  // Dense checkpoint node numbering.
  p.node_offset_.resize(static_cast<std::size_t>(p.num_processes()));
  p.total_ckpts_ = 0;
  for (ProcessId i = 0; i < p.num_processes(); ++i) {
    p.node_offset_[static_cast<std::size_t>(i)] = p.total_ckpts_;
    p.total_ckpts_ += p.num_ckpts(i);
  }

  // Topological order (Kahn): an event is ready when all its local
  // predecessors ran and, for a delivery, when its send ran. A stall with
  // events remaining means the "computation" has a causal cycle (a delivery
  // placed before its own transitive cause) and is not a valid distributed
  // computation.
  std::vector<EventIndex> cursor(static_cast<std::size_t>(p.num_processes()), 0);
  std::vector<bool> sent(p.messages_.size(), false);
  p.topo_.reserve(static_cast<std::size_t>(p.total_events_));
  int emitted = 0;
  bool progress = true;
  while (progress) {
    progress = false;
    for (ProcessId i = 0; i < p.num_processes(); ++i) {
      auto& pos = cursor[static_cast<std::size_t>(i)];
      while (pos < p.num_events(i)) {
        const Event& ev = p.event(i, pos);
        if (ev.kind == EventKind::kDeliver && !sent[static_cast<std::size_t>(ev.msg)])
          break;
        if (ev.kind == EventKind::kSend) sent[static_cast<std::size_t>(ev.msg)] = true;
        p.topo_.push_back({i, pos});
        ++pos;
        ++emitted;
        progress = true;
      }
    }
  }
  RDT_REQUIRE(emitted == p.total_events_,
              "the recorded events contain a causal cycle (some delivery "
              "precedes its own cause) — not a valid distributed computation");

  // Fill message interval indexes now that events carry them.
  for (Message& m : p.messages_) {
    m.send_interval =
        p.event(m.sender, m.send_pos).interval;
    m.deliver_interval = p.event(m.receiver, m.deliver_pos).interval;
    RDT_ASSERT(m.send_interval >= 1 && m.deliver_interval >= 1);
  }

  if constexpr (kAuditsEnabled) audit_pattern(p);

  return p;
}

}  // namespace rdt
