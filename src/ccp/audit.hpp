// Audit-tier (RDT_AUDIT) cross-validation entry points for the ccp layer.
//
// Every function here is a no-op unless the build enables the expensive
// audit tier (cmake -DRDT_AUDITS=ON, which defines RDT_AUDITS); when enabled
// a violated invariant throws rdt::audit_failure. The functions are always
// compiled and always callable, so tests can exercise them directly and
// skip themselves when rdt::audits_enabled() is false.
#pragma once

#include "ccp/consistency.hpp"
#include "ccp/pattern.hpp"

namespace rdt {

// Full structural re-validation of a finalized Pattern: checkpoint event
// positions strictly increasing with matching indices, interval assignment
// consistent with checkpoint counts, message endpoints well-formed (kinds,
// positions, intervals), the cached topological order a happened-before-
// consistent permutation of all events, and the dense node numbering a
// bijection. O(events * processes); called by PatternBuilder::build() when
// audits are on.
void audit_pattern(const Pattern& p);

// Checks that `g` is a consistent global checkpoint of `p` (Definition 2.2,
// re-derived from orphan_messages rather than trusting the caller). `what`
// names the value being audited in the failure message.
void audit_consistent_global_ckpt(const Pattern& p, const GlobalCkpt& g,
                                  const char* what);

}  // namespace rdt
