#include "ccp/audit.hpp"

#include <algorithm>
#include <vector>

#include "util/check.hpp"

namespace rdt {

void audit_pattern(const Pattern& p) {
  if constexpr (!kAuditsEnabled) return;

  // Checkpoint events: positions strictly increasing, event kinds and
  // indices matching, intervals correctly ordered.
  for (ProcessId i = 0; i < p.num_processes(); ++i) {
    EventIndex prev = -1;
    for (CkptIndex x = 1; x <= p.last_ckpt(i); ++x) {
      const EventIndex pos = p.ckpt_pos(i, x);
      RDT_AUDIT(pos > prev, "checkpoint positions must be strictly increasing");
      const Event& ev = p.event(i, pos);
      RDT_AUDIT(ev.kind == EventKind::kCheckpoint,
                "ckpt_pos must point at a checkpoint event");
      RDT_AUDIT(ev.ckpt == x, "checkpoint event carries the wrong index");
      const auto [first, last] = p.interval_span(i, x);
      RDT_AUDIT(first == prev + 1 && last == pos,
                "interval span disagrees with checkpoint positions");
      prev = pos;
    }
    // Interval assignment: an event after x checkpoints lives in I_{i,x+1}.
    CkptIndex seen = 0;
    for (EventIndex pos = 0; pos < p.num_events(i); ++pos) {
      const Event& ev = p.event(i, pos);
      if (ev.kind == EventKind::kCheckpoint)
        ++seen;
      else
        RDT_AUDIT(ev.interval == seen + 1,
                  "event interval disagrees with preceding checkpoint count");
    }
    RDT_AUDIT(seen == p.last_ckpt(i),
              "checkpoint count disagrees with last_ckpt");
  }

  // Messages: endpoints exist, kinds match, intervals match the events.
  for (const Message& m : p.messages()) {
    RDT_AUDIT(m.sender != m.receiver, "channels connect distinct processes");
    const Event& s = p.event(m.sender, m.send_pos);
    const Event& d = p.event(m.receiver, m.deliver_pos);
    RDT_AUDIT(s.kind == EventKind::kSend && s.msg == m.id,
              "message send endpoint dangles");
    RDT_AUDIT(d.kind == EventKind::kDeliver && d.msg == m.id,
              "message delivery endpoint dangles");
    RDT_AUDIT(m.send_interval == s.interval && m.deliver_interval == d.interval,
              "message interval indices disagree with its events");
    RDT_AUDIT(p.happened_before(m.send_event(), m.deliver_event()),
              "a send must happen before its delivery");
  }

  // Topological order: a permutation of all events that respects program
  // order and send-before-delivery.
  const auto& topo = p.topological_order();
  RDT_AUDIT(static_cast<int>(topo.size()) == p.total_events(),
            "topological order must cover every event exactly once");
  std::vector<std::vector<char>> seen_event(
      static_cast<std::size_t>(p.num_processes()));
  for (ProcessId i = 0; i < p.num_processes(); ++i)
    seen_event[static_cast<std::size_t>(i)].assign(
        static_cast<std::size_t>(p.num_events(i)), 0);
  std::vector<EventIndex> next_pos(static_cast<std::size_t>(p.num_processes()), 0);
  std::vector<char> sent(static_cast<std::size_t>(p.num_messages()), 0);
  for (const EventRef& e : topo) {
    auto& flag = seen_event[static_cast<std::size_t>(e.process)]
                           [static_cast<std::size_t>(e.pos)];
    RDT_AUDIT(flag == 0, "topological order repeats an event");
    flag = 1;
    RDT_AUDIT(e.pos == next_pos[static_cast<std::size_t>(e.process)]++,
              "topological order violates program order");
    const Event& ev = p.event(e);
    if (ev.kind == EventKind::kSend) sent[static_cast<std::size_t>(ev.msg)] = 1;
    if (ev.kind == EventKind::kDeliver)
      RDT_AUDIT(sent[static_cast<std::size_t>(ev.msg)] == 1,
                "topological order delivers a message before its send");
  }

  // Dense node numbering is a bijection over all checkpoints.
  int node = 0;
  for (ProcessId i = 0; i < p.num_processes(); ++i)
    for (CkptIndex x = 0; x <= p.last_ckpt(i); ++x, ++node) {
      RDT_AUDIT(p.node_id({i, x}) == node, "node numbering must be dense");
      const CkptId back = p.node_ckpt(node);
      RDT_AUDIT(back.process == i && back.index == x,
                "node_ckpt must invert node_id");
    }
  RDT_AUDIT(node == p.total_ckpts(), "total_ckpts disagrees with node numbering");
}

void audit_consistent_global_ckpt(const Pattern& p, const GlobalCkpt& g,
                                  const char* what) {
  if constexpr (!kAuditsEnabled) return;
  validate(p, g);
  const std::vector<MsgId> orphans = orphan_messages(p, g);
  RDT_AUDIT(orphans.empty(), std::string(what) + " must be a consistent global "
                                 "checkpoint but leaves " +
                                 std::to_string(orphans.size()) +
                                 " orphan message(s)");
}

}  // namespace rdt
