// Orphan messages and (global) checkpoint consistency — Section 2.2 of the
// paper.
//
// A message m from P_i to P_j is *orphan* w.r.t. the ordered pair
// (C_{i,x}, C_{j,y}) when its delivery belongs to C_{j,y} (it happened before
// the checkpoint, i.e. deliver_interval <= y) while its send does not belong
// to C_{i,x} (send_interval > x). A pair is consistent iff no orphan exists
// in either direction; a global checkpoint (one local checkpoint per
// process) is consistent iff all its pairs are.
#pragma once

#include <ostream>
#include <vector>

#include "ccp/pattern.hpp"

namespace rdt {

// A global checkpoint: indices[i] = x means it contains C_{i,x}.
struct GlobalCkpt {
  std::vector<CkptIndex> indices;

  friend auto operator<=>(const GlobalCkpt&, const GlobalCkpt&) = default;
};

std::ostream& operator<<(std::ostream& os, const GlobalCkpt& g);

// Throws unless g has one in-range checkpoint index per process of p.
void validate(const Pattern& p, const GlobalCkpt& g);

// m orphan w.r.t. the ordered pair (C_{sender,sender_ckpt},
// C_{receiver,receiver_ckpt})? The checkpoints must belong to the message's
// sender/receiver processes.
bool is_orphan(const Pattern& p, MsgId m, CkptIndex sender_ckpt,
               CkptIndex receiver_ckpt);

// Consistency of the (unordered) pair {a, b}; requires a and b on distinct
// processes. Checks both orphan directions.
bool pair_consistent(const Pattern& p, const CkptId& a, const CkptId& b);

// Consistency of a full global checkpoint (Definition 2.2).
bool consistent(const Pattern& p, const GlobalCkpt& g);

// All messages orphan w.r.t. g (empty iff consistent).
std::vector<MsgId> orphan_messages(const Pattern& p, const GlobalCkpt& g);

// Componentwise comparison helpers for the consistent-global-checkpoint
// lattice (used by min/max computations in core/).
bool leq(const GlobalCkpt& a, const GlobalCkpt& b);
GlobalCkpt componentwise_min(const GlobalCkpt& a, const GlobalCkpt& b);
GlobalCkpt componentwise_max(const GlobalCkpt& a, const GlobalCkpt& b);

}  // namespace rdt
