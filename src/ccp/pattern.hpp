// The checkpoint-and-communication pattern (CCP) — Definition 2.1 of the
// paper: a distributed computation (processes, internal/send/delivery
// events) together with the set of local checkpoints taken on it.
//
// Conventions (matching the paper):
//  * Every process P_i has an implicit initial checkpoint C_{i,0} *before*
//    its first event.
//  * The x-th explicit checkpoint event of P_i is C_{i,x} (x >= 1).
//  * Interval I_{i,x} is the (possibly empty) sequence of non-checkpoint
//    events between C_{i,x-1} and C_{i,x}. Every non-checkpoint event of a
//    finalized pattern belongs to a *closed* interval: if a process's trace
//    does not end with a checkpoint, a final checkpoint is appended and
//    flagged "virtual" (the paper's assumption that "after each event a
//    checkpoint will eventually be taken").
//  * A message sent in I_{i,x} and delivered in I_{j,y} induces the R-graph
//    edge C_{i,x} -> C_{j,y}.
//
// A Pattern is immutable once built (see PatternBuilder); analyses cache
// derived data (topological event order, per-event vector clocks) inside the
// Pattern on first use.
#pragma once

#include <iosfwd>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "causality/ids.hpp"
#include "causality/vector_clock.hpp"

namespace rdt {

namespace testing_internal {
struct PatternCorrupter;
}  // namespace testing_internal

enum class EventKind { kInternal, kSend, kDeliver, kCheckpoint };

std::ostream& operator<<(std::ostream& os, EventKind kind);

struct Event {
  EventKind kind = EventKind::kInternal;
  MsgId msg = kNoMsg;        // for kSend / kDeliver
  CkptIndex ckpt = -1;       // for kCheckpoint: the index x of C_{i,x}
  CkptIndex interval = -1;   // for non-checkpoints: the x of the enclosing I_{i,x}
};

// A globally unique reference to one event of the computation.
struct EventRef {
  ProcessId process = -1;
  EventIndex pos = -1;

  friend auto operator<=>(const EventRef&, const EventRef&) = default;
};

std::ostream& operator<<(std::ostream& os, const EventRef& e);

struct Message {
  MsgId id = kNoMsg;
  ProcessId sender = -1;
  ProcessId receiver = -1;
  EventIndex send_pos = -1;
  EventIndex deliver_pos = -1;
  CkptIndex send_interval = -1;     // x such that send(m) in I_{sender,x}
  CkptIndex deliver_interval = -1;  // y such that deliver(m) in I_{receiver,y}

  EventRef send_event() const { return {sender, send_pos}; }
  EventRef deliver_event() const { return {receiver, deliver_pos}; }
};

class Pattern {
 public:
  // An empty pattern (zero processes); meaningful patterns come from
  // PatternBuilder.
  Pattern() = default;

  // --- shape ---------------------------------------------------------------
  int num_processes() const { return static_cast<int>(events_.size()); }
  int num_events(ProcessId p) const;
  int total_events() const { return total_events_; }
  const Event& event(ProcessId p, EventIndex pos) const;
  const Event& event(const EventRef& e) const { return event(e.process, e.pos); }

  int num_messages() const { return static_cast<int>(messages_.size()); }
  const Message& message(MsgId m) const;
  const std::vector<Message>& messages() const { return messages_; }

  // --- checkpoints & intervals ----------------------------------------------
  // Highest checkpoint index of P_i (>= 0; 0 means only the initial one).
  CkptIndex last_ckpt(ProcessId p) const;
  // Number of checkpoints of P_i including the initial C_{i,0}.
  int num_ckpts(ProcessId p) const { return last_ckpt(p) + 1; }
  // Sum of num_ckpts over all processes (the R-graph node count).
  int total_ckpts() const { return total_ckpts_; }

  // Position of the checkpoint event C_{p,x}; x = 0 returns -1 (the initial
  // checkpoint precedes every event).
  EventIndex ckpt_pos(ProcessId p, CkptIndex x) const;
  // True iff C_{p,x} was appended automatically to close the trailing
  // interval rather than taken by the application/protocol.
  bool ckpt_is_virtual(ProcessId p, CkptIndex x) const;
  // Interval I_{p,x} as a half-open local-position range [first, last)
  // covering its non-checkpoint events.
  std::pair<EventIndex, EventIndex> interval_span(ProcessId p, CkptIndex x) const;

  // Dense numbering of checkpoints across all processes, used by R-graph and
  // closure code: node ids are contiguous per process.
  int node_id(const CkptId& c) const;
  CkptId node_ckpt(int node) const;

  // --- causality -------------------------------------------------------------
  // Events of all processes in some total order consistent with
  // happened-before (program order + send-before-delivery).
  const std::vector<EventRef>& topological_order() const { return topo_; }

  // Fidge–Mattern vector clock of an event (entry q = number of P_q events
  // in the causal past, inclusive). Computed lazily, cached.
  const VectorClock& clock(const EventRef& e) const;
  // happened-before test between two events (strict).
  bool happened_before(const EventRef& a, const EventRef& b) const;

 private:
  friend class PatternBuilder;
  // Test-only backdoor: the audit tests deliberately corrupt private state
  // to prove that audit_pattern() catches it. Never used by library code.
  friend struct testing_internal::PatternCorrupter;

  // Vector clocks depend only on the immutable event structure, so copies of
  // a Pattern share one cache. call_once makes the lazy build safe when one
  // Pattern (or copies of it) is used from several threads.
  struct ClockCache {
    std::once_flag once;
    std::vector<std::vector<VectorClock>> rows;
  };

  void ensure_clocks() const;

  std::vector<std::vector<Event>> events_;
  std::vector<Message> messages_;
  // ckpt_event_pos_[p][x-1] = local position of the event recording C_{p,x}.
  std::vector<std::vector<EventIndex>> ckpt_event_pos_;
  std::vector<bool> final_is_virtual_;
  std::vector<int> node_offset_;
  std::vector<EventRef> topo_;
  int total_events_ = 0;
  int total_ckpts_ = 0;

  std::shared_ptr<ClockCache> clocks_ = std::make_shared<ClockCache>();
};

}  // namespace rdt
