// Netzer–Xu zigzag relations, expressed on top of the R-graph closures.
//
// A *zigzag path from C_{i,x} to C_{j,y}* (Netzer & Xu 1995) is a message
// chain whose first send happens after C_{i,x} (send interval >= x+1) and
// whose last delivery happens before C_{j,y} (delivery interval <= y). Their
// theorem: two local checkpoints can belong to the same consistent global
// checkpoint iff no zigzag path connects them in either direction; a
// checkpoint on a zigzag cycle ("useless" checkpoint) belongs to no
// consistent global checkpoint at all.
//
// Note the indexing offset w.r.t. the paper's message chains: a chain *from
// C_{i,x}* in the paper leaves interval I_{i,x} (send *before* C_{i,x}),
// which is exactly a Netzer–Xu zigzag path from C_{i,x-1}.
#pragma once

#include <vector>

#include "rgraph/reachability.hpp"

namespace rdt {

// Zigzag path from a to b (send strictly after a, delivery before b)?
bool zigzag_to(const ReachabilityClosure& closure, const CkptId& a, const CkptId& b);

// Netzer–Xu: can a and b belong to a common consistent global checkpoint?
// (true for a == b; requires distinct processes otherwise meaningfulness,
// but same-process pairs are answered consistently: only a == b qualifies.)
bool zigzag_compatible(const ReachabilityClosure& closure, const CkptId& a,
                       const CkptId& b);

// Is c on a zigzag cycle (a "useless" checkpoint)?
bool on_zigzag_cycle(const ReachabilityClosure& closure, const CkptId& c);

// All checkpoints lying on some zigzag cycle.
std::vector<CkptId> useless_checkpoints(const ReachabilityClosure& closure);

}  // namespace rdt
