// Incrementally extended two-layer reachability over a growing R-graph.
//
// IncrementalReach is the pure incremental step the batch
// ReachabilityClosure folds: nodes and edges are appended one at a time
// (never removed — an R-graph only grows as the computation runs), and both
// closure relations stay queryable after every append:
//  * reach(a, b)     — an R-path (possibly empty) from a to b;
//  * msg_reach(a, b) — an R-path from a to b with >= 1 message edge.
//
// Representation: per source node, two bit layers
//   l0 = nodes reachable via paths with NO message edge (process edges only);
//   l1 = nodes reachable via paths with >= 1 message edge;
// so reach = l0 | l1 (l0 is reflexive) and msg_reach = l1. The split makes
// the "at least one message edge" qualifier a plain 2-state product
// construction instead of a separate fixpoint.
//
// Incrementality: every appended edge goes into a global typed edge log.
// A source row is materialized lazily on first query and then *catches up*
// by scanning the log from its private cursor: a logged edge (u, v) whose
// tail u the row already reaches seeds new frontier work, and one BFS drain
// over the full adjacency completes the propagation. Each row consumes each
// log entry exactly once and sets each (node, layer) bit at most once, so
// the total work per row is O(V + E) over the row's whole lifetime —
// amortized O(1) per appended edge per live row, with no recomputation of
// already-known reachability.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "util/bit_matrix.hpp"

namespace rdt {

class IncrementalReach {
 public:
  IncrementalReach() = default;

  int num_nodes() const { return static_cast<int>(adj_.size()); }
  int num_edges() const { return static_cast<int>(edges_.size()); }

  // Append a new node; returns its id (dense, starting at 0).
  int add_node();

  // Back to the empty graph, keeping the outer containers' capacity so a
  // recycled instance regrows without reallocating its spines. The
  // one-argument form additionally moves up to `max_pooled_rows`
  // materialized closure rows into an internal pool (their word buffers
  // keep their capacity) and trims the pool to that cap — the engine's
  // compaction pass rebuilds the graph through this, so the post-rebuild
  // queries re-materialize rows without reallocating. reset() alone pools
  // nothing and frees any existing pool: full release.
  void reset() { reset(0); }
  void reset(std::size_t max_pooled_rows);

  // Append a directed edge. Both endpoints must already exist. Duplicate
  // edges are tolerated (they cost one log entry each but change nothing).
  void add_edge(int from, int to, bool message);

  // Closure queries. Non-const: the first query for a source materializes
  // its row, later ones catch it up with the edge log.
  bool reach(int from, int to);
  bool msg_reach(int from, int to);

  // Copy the current closure rows of `from` into caller-provided spans
  // (bits OR-ed in; pass zeroed spans of width num_nodes()).
  void snapshot(int from, BitSpan reach_out, BitSpan msg_reach_out);

  // Heap payload of the graph: adjacency, edge log, materialized and pooled
  // closure rows (capacities, per util/mem_accounting.hpp's convention).
  std::size_t resident_bytes() const;

  // Forward adjacency walk (for rollback propagation); fn(successor) may be
  // called more than once per successor if duplicate edges were appended.
  template <typename Fn>
  void for_each_successor(int node, Fn&& fn) const {
    for (const std::uint32_t enc : adj_[static_cast<std::size_t>(node)])
      fn(static_cast<int>(enc >> 1));
  }

 private:
  // One source node's closure state. l0/l1 are word arrays sized lazily to
  // the current node count; edge_pos is the row's cursor into edges_.
  struct Row {
    std::vector<std::uint64_t> l0, l1;
    std::size_t edge_pos = 0;
  };

  Row& row_for(int from);
  void catch_up(int from, Row& row);

  // adj_[u] holds successors encoded (v << 1) | is_message.
  std::vector<std::vector<std::uint32_t>> adj_;
  // Append-only log of every edge: (u, (v << 1) | is_message).
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges_;
  std::vector<std::unique_ptr<Row>> rows_;
  // Rows recycled by reset(max_pooled_rows): cleared (so a reuse looks
  // fresh to catch_up) but capacity-bearing.
  std::vector<std::unique_ptr<Row>> row_pool_;
  // BFS scratch, entries encoded (node << 1) | layer.
  std::vector<std::uint32_t> queue_;
};

}  // namespace rdt
