// All-pairs reachability closures over the R-graph.
//
// Two relations are pre-computed:
//  * reach(a, b)     — an R-path (possibly empty) from a to b;
//  * msg_reach(a, b) — an R-path from a to b containing at least one message
//                      edge, i.e. an actual message chain (Z-path) leaving an
//                      interval at or after a and entering one at or before b.
//
// msg_reach is the relation Z-path theory needs: reflexivity and pure
// process-edge paths carry no rollback dependency through messages, so e.g.
// Z-cycle detection (msg_reach(c, c)) and Netzer–Xu compatibility must
// exclude them.
#pragma once

#include <utility>

#include "rgraph/rgraph.hpp"
#include "util/bit_matrix.hpp"

namespace rdt {

class ReachabilityClosure {
 public:
  explicit ReachabilityClosure(const RGraph& graph);
  // The closure keeps a reference to the graph; a temporary would dangle.
  explicit ReachabilityClosure(RGraph&&) = delete;

  const RGraph& graph() const { return *graph_; }

  // R-path (reflexive-transitive) from `from` to `to`?
  bool reach(const CkptId& from, const CkptId& to) const;
  bool reach(int from, int to) const;

  // R-path with >= 1 message edge from `from` to `to`?
  bool msg_reach(const CkptId& from, const CkptId& to) const;
  bool msg_reach(int from, int to) const;

  // Rows for bulk consumers (views into the contiguous closure planes).
  ConstBitSpan reach_row(int from) const {
    return std::as_const(reach_).row(static_cast<std::size_t>(from));
  }
  ConstBitSpan msg_reach_row(int from) const {
    return std::as_const(msg_reach_).row(static_cast<std::size_t>(from));
  }

 private:
  const RGraph* graph_;
  BitMatrix reach_;      // reflexive-transitive closure
  BitMatrix msg_reach_;  // closure restricted to paths using a message edge
};

// Audit-tier (RDT_AUDIT) cross-validation: re-derives both closures from
// independent per-node BFS sweeps over the R-graph and compares them to the
// word-parallel Warshall result row by row. No-op unless the build defines
// RDT_AUDITS; a mismatch throws rdt::audit_failure. O(V * (V + E)). Also
// invoked automatically by the ReachabilityClosure constructor in audit
// builds.
void audit_reachability_closure(const ReachabilityClosure& closure);

}  // namespace rdt
