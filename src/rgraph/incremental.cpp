#include "rgraph/incremental.hpp"

#include "util/bit_kernels.hpp"
#include "util/check.hpp"
#include "util/mem_accounting.hpp"

namespace rdt {

namespace {

bool test_bit(const std::vector<std::uint64_t>& words, std::uint32_t i) {
  const std::size_t w = i >> 6;
  return w < words.size() && ((words[w] >> (i & 63)) & 1u) != 0;
}

// Returns true when the bit was newly set.
bool set_bit(std::vector<std::uint64_t>& words, std::uint32_t i) {
  std::uint64_t& w = words[i >> 6];
  const std::uint64_t mask = std::uint64_t{1} << (i & 63);
  if ((w & mask) != 0) return false;
  w |= mask;
  return true;
}

}  // namespace

void IncrementalReach::reset(std::size_t max_pooled_rows) {
  for (auto& slot : rows_) {
    if (!slot || row_pool_.size() >= max_pooled_rows) continue;
    // A pooled row must look fresh to catch_up (empty l0 => reflexive
    // reseed + full log replay) while keeping its word buffers' capacity.
    slot->l0.clear();
    slot->l1.clear();
    slot->edge_pos = 0;
    row_pool_.push_back(std::move(slot));
  }
  if (row_pool_.size() > max_pooled_rows) row_pool_.resize(max_pooled_rows);
  adj_.clear();
  edges_.clear();
  rows_.clear();
  queue_.clear();
}

int IncrementalReach::add_node() {
  const int id = static_cast<int>(adj_.size());
  adj_.emplace_back();
  rows_.emplace_back();  // row materialized lazily on first query
  return id;
}

void IncrementalReach::add_edge(int from, int to, bool message) {
  RDT_REQUIRE(from >= 0 && from < num_nodes(), "edge tail out of range");
  RDT_REQUIRE(to >= 0 && to < num_nodes(), "edge head out of range");
  const auto enc =
      (static_cast<std::uint32_t>(to) << 1) | (message ? 1u : 0u);
  adj_[static_cast<std::size_t>(from)].push_back(enc);
  edges_.emplace_back(static_cast<std::uint32_t>(from), enc);
}

IncrementalReach::Row& IncrementalReach::row_for(int from) {
  RDT_REQUIRE(from >= 0 && from < num_nodes(), "node id out of range");
  auto& slot = rows_[static_cast<std::size_t>(from)];
  if (!slot) {
    if (!row_pool_.empty()) {
      slot = std::move(row_pool_.back());
      row_pool_.pop_back();
    } else {
      slot = std::make_unique<Row>();
    }
  }
  catch_up(from, *slot);
  return *slot;
}

void IncrementalReach::catch_up(int from, Row& row) {
  const std::size_t words =
      bitdetail::words_for(static_cast<std::size_t>(num_nodes()));
  const bool fresh = row.l0.empty();
  row.l0.resize(words, 0);
  row.l1.resize(words, 0);

  queue_.clear();
  if (fresh) {
    // Reflexive seed: the empty path reaches the source with no message edge.
    set_bit(row.l0, static_cast<std::uint32_t>(from));
    queue_.push_back(static_cast<std::uint32_t>(from) << 1);
  }

  // Scan the log from the row's cursor. A logged edge only matters where the
  // already-known closure touches its tail; propagation past the head is
  // completed by the BFS drain below (the full adjacency already contains
  // every logged edge, so newly reached tails are handled there).
  for (; row.edge_pos < edges_.size(); ++row.edge_pos) {
    const auto [u, enc] = edges_[row.edge_pos];
    const std::uint32_t v = enc >> 1;
    const bool msg = (enc & 1u) != 0;
    if (test_bit(row.l0, u)) {
      const std::uint32_t layer = msg ? 1u : 0u;
      if (set_bit(layer != 0 ? row.l1 : row.l0, v))
        queue_.push_back((v << 1) | layer);
    }
    if (test_bit(row.l1, u) && set_bit(row.l1, v))
      queue_.push_back((v << 1) | 1u);
  }

  while (!queue_.empty()) {
    const std::uint32_t item = queue_.back();
    queue_.pop_back();
    const std::uint32_t x = item >> 1;
    const std::uint32_t layer = item & 1u;
    for (const std::uint32_t enc : adj_[x]) {
      const std::uint32_t y = enc >> 1;
      const std::uint32_t out = (layer | (enc & 1u));
      if (set_bit(out != 0 ? row.l1 : row.l0, y))
        queue_.push_back((y << 1) | out);
    }
  }
}

bool IncrementalReach::reach(int from, int to) {
  RDT_REQUIRE(to >= 0 && to < num_nodes(), "node id out of range");
  const Row& row = row_for(from);
  return test_bit(row.l0, static_cast<std::uint32_t>(to)) ||
         test_bit(row.l1, static_cast<std::uint32_t>(to));
}

bool IncrementalReach::msg_reach(int from, int to) {
  RDT_REQUIRE(to >= 0 && to < num_nodes(), "node id out of range");
  return test_bit(row_for(from).l1, static_cast<std::uint32_t>(to));
}

std::size_t IncrementalReach::resident_bytes() const {
  std::size_t bytes = mem::nested_vec_bytes(adj_) + mem::vec_bytes(edges_) +
                      mem::vec_bytes(rows_) + mem::vec_bytes(row_pool_) +
                      mem::vec_bytes(queue_);
  const auto row_bytes = [](const std::unique_ptr<Row>& row) {
    if (!row) return std::size_t{0};
    return sizeof(Row) + mem::vec_bytes(row->l0) + mem::vec_bytes(row->l1);
  };
  for (const auto& row : rows_) bytes += row_bytes(row);
  for (const auto& row : row_pool_) bytes += row_bytes(row);
  return bytes;
}

void IncrementalReach::snapshot(int from, BitSpan reach_out,
                                BitSpan msg_reach_out) {
  const auto nodes = static_cast<std::size_t>(num_nodes());
  RDT_REQUIRE(reach_out.size() == nodes && msg_reach_out.size() == nodes,
              "snapshot spans must be num_nodes() bits wide");
  const Row& row = row_for(from);
  // Row layers are word blocks over exactly num_nodes bits with zero tails
  // (set_bit only ever sets in-range node ids), so the copy-out is three
  // whole-block ORs instead of a per-set-bit scatter.
  const std::size_t nw = row.l0.size();
  bitkern::or_into(reach_out.words(), row.l0.data(), nw);
  bitkern::or_into(reach_out.words(), row.l1.data(), nw);
  bitkern::or_into(msg_reach_out.words(), row.l1.data(), nw);
  RDT_AUDIT(reach_out.tail_zero() && msg_reach_out.tail_zero(),
            "closure row snapshot set tail bits");
}

}  // namespace rdt
