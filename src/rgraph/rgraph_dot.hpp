// Graphviz export of rollback-dependency graphs.
//
// Renders the R-graph in the layout of the paper's Figure 1.b: one row per
// process (checkpoints in rank order), solid process edges, message edges
// labelled with the messages that induce them. Optionally highlights the
// hidden dependencies (R-paths that are not on-line trackable) in red —
// `dot -Tsvg` then gives the exact picture the paper draws, for any
// pattern.
#pragma once

#include <iosfwd>
#include <string>

#include "ccp/pattern.hpp"

namespace rdt {

struct DotOptions {
  bool highlight_hidden = true;   // color untracked dependencies red
  bool show_message_labels = true;
};

// Writes Graphviz DOT for the pattern's R-graph.
void write_rgraph_dot(std::ostream& os, const Pattern& pattern,
                      const DotOptions& options = {});

std::string rgraph_to_dot(const Pattern& pattern, const DotOptions& options = {});

}  // namespace rdt
