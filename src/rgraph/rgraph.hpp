// Wang's Rollback-Dependency Graph (R-graph) — Section 3.1 of the paper.
//
// Nodes are the local checkpoints C_{i,x} (including each initial C_{i,0}
// and the final — possibly virtual — checkpoint of every process). Edges:
//   * process edges   C_{i,x} -> C_{i,x+1};
//   * message edges   C_{i,x} -> C_{j,y} whenever some message is sent in
//     I_{i,x} and delivered in I_{j,y} (i != j).
//
// The operational meaning of a path C_{i,x} ->* C_{j,y}: if P_i rolls back
// to a checkpoint preceding C_{i,x} then P_j must roll back to a checkpoint
// preceding C_{j,y}. An R-path with at least one message edge from C_{i,x}
// to C_{j,y} exists iff there is a message chain (Z-path) leaving some
// interval I_{i,s} with s >= x and entering some interval I_{j,t} with
// t <= y.
#pragma once

#include <utility>
#include <vector>

#include "ccp/pattern.hpp"
#include "util/bit_matrix.hpp"

namespace rdt {

class RGraph {
 public:
  explicit RGraph(const Pattern& pattern);
  // The graph keeps a reference to the pattern; a temporary would dangle.
  explicit RGraph(Pattern&&) = delete;

  const Pattern& pattern() const { return *pattern_; }
  int num_nodes() const { return static_cast<int>(succ_.size()); }
  int num_edges() const { return num_edges_; }

  // Successor node ids of `node` (deduplicated).
  const std::vector<int>& successors(int node) const;
  // Predecessor node ids of `node` (deduplicated).
  const std::vector<int>& predecessors(int node) const;

  bool has_edge(const CkptId& from, const CkptId& to) const;

  // All nodes reachable from `from` following edges forward (reflexive:
  // `from` itself is included).
  BitVector reachable_from(int from) const;
  // All nodes that reach `to` (reflexive).
  BitVector reaching_to(int to) const;

  // Convenience wrappers over Pattern's dense node numbering.
  int node(const CkptId& c) const { return pattern_->node_id(c); }
  CkptId ckpt(int node) const { return pattern_->node_ckpt(node); }

 private:
  const Pattern* pattern_;
  std::vector<std::vector<int>> succ_;
  std::vector<std::vector<int>> pred_;
  int num_edges_ = 0;
};

}  // namespace rdt
