#include "rgraph/zigzag.hpp"

namespace rdt {

bool zigzag_to(const ReachabilityClosure& closure, const CkptId& a, const CkptId& b) {
  const Pattern& p = closure.graph().pattern();
  // Sends after C_{a.process, a.index} live in intervals >= a.index + 1; the
  // chain relation with those endpoints is msg_reach from node (a.p, a.x+1).
  if (a.index + 1 > p.last_ckpt(a.process)) return false;
  return closure.msg_reach({a.process, a.index + 1}, b);
}

bool zigzag_compatible(const ReachabilityClosure& closure, const CkptId& a,
                       const CkptId& b) {
  if (a.process == b.process) return a.index == b.index;
  return !zigzag_to(closure, a, b) && !zigzag_to(closure, b, a);
}

bool on_zigzag_cycle(const ReachabilityClosure& closure, const CkptId& c) {
  return zigzag_to(closure, c, c);
}

std::vector<CkptId> useless_checkpoints(const ReachabilityClosure& closure) {
  const Pattern& p = closure.graph().pattern();
  std::vector<CkptId> result;
  for (ProcessId i = 0; i < p.num_processes(); ++i)
    for (CkptIndex x = 0; x <= p.last_ckpt(i); ++x)
      if (on_zigzag_cycle(closure, {i, x})) result.push_back({i, x});
  return result;
}

}  // namespace rdt
