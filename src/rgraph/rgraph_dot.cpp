#include "rgraph/rgraph_dot.hpp"

#include <map>
#include <optional>
#include <ostream>
#include <sstream>
#include <vector>

#include "core/tdv.hpp"
#include "rgraph/reachability.hpp"
#include "rgraph/rgraph.hpp"

namespace rdt {

namespace {

// Built by append, not operator+ chains: GCC 12 at -O3 flags the inlined
// memcpy of `"c" + std::to_string(...)` with a spurious -Wrestrict
// (PR105329), which -Werror turns fatal.
std::string node_name(const CkptId& c) {
  std::string out;
  out += 'c';
  out += std::to_string(c.process);
  out += '_';
  out += std::to_string(c.index);
  return out;
}

}  // namespace

void write_rgraph_dot(std::ostream& os, const Pattern& pattern,
                      const DotOptions& options) {
  os << "digraph rgraph {\n"
        "  rankdir=LR;\n"
        "  node [shape=box, fontname=\"monospace\"];\n";

  // One subgraph rank-chain per process keeps rows horizontal.
  for (ProcessId i = 0; i < pattern.num_processes(); ++i) {
    os << "  subgraph proc" << i << " {\n    rank=same;\n";
    for (CkptIndex x = 0; x <= pattern.last_ckpt(i); ++x) {
      os << "    " << node_name({i, x}) << " [label=\"C(" << i << ',' << x
         << ")\"";
      if (pattern.ckpt_is_virtual(i, x)) os << ", style=dashed";
      os << "];\n";
    }
    os << "  }\n";
  }

  // Process edges.
  for (ProcessId i = 0; i < pattern.num_processes(); ++i)
    for (CkptIndex x = 0; x < pattern.last_ckpt(i); ++x)
      os << "  " << node_name({i, x}) << " -> " << node_name({i, x + 1})
         << " [weight=10];\n";

  // Message edges, grouped so parallel messages share one edge.
  std::map<std::pair<int, int>, std::vector<MsgId>> edges;
  for (const Message& m : pattern.messages())
    edges[{pattern.node_id({m.sender, m.send_interval}),
           pattern.node_id({m.receiver, m.deliver_interval})}]
        .push_back(m.id);

  // Hidden dependencies for highlighting.
  std::optional<TdvAnalysis> tdv;
  std::optional<RGraph> graph;
  std::optional<ReachabilityClosure> closure;
  if (options.highlight_hidden) {
    tdv.emplace(pattern);
    graph.emplace(pattern);
    closure.emplace(*graph);
  }

  for (const auto& [endpoints, msgs] : edges) {
    const CkptId from = pattern.node_ckpt(endpoints.first);
    const CkptId to = pattern.node_ckpt(endpoints.second);
    os << "  " << node_name(from) << " -> " << node_name(to)
       << " [constraint=false, style=bold";
    if (options.show_message_labels) {
      os << ", label=\"";
      for (std::size_t k = 0; k < msgs.size(); ++k)
        os << (k ? "," : "") << 'm' << msgs[k];
      os << '"';
    }
    if (options.highlight_hidden && !tdv->trackable(from, to))
      os << ", color=red, fontcolor=red";
    os << "];\n";
  }

  // Untracked transitive dependencies that no single edge shows.
  if (options.highlight_hidden) {
    for (int u = 0; u < pattern.total_ckpts(); ++u) {
      const CkptId a = pattern.node_ckpt(u);
      const ConstBitSpan row = closure->msg_reach_row(u);
      for (std::size_t v = row.find_next(0); v < row.size();
           v = row.find_next(v + 1)) {
        const CkptId b = pattern.node_ckpt(static_cast<int>(v));
        if (tdv->trackable(a, b)) continue;
        if (edges.contains({u, static_cast<int>(v)})) continue;  // drawn above
        os << "  " << node_name(a) << " -> " << node_name(b)
           << " [constraint=false, style=dotted, color=red, "
              "label=\"hidden\", fontcolor=red];\n";
      }
    }
  }
  os << "}\n";
}

std::string rgraph_to_dot(const Pattern& pattern, const DotOptions& options) {
  std::ostringstream os;
  write_rgraph_dot(os, pattern, options);
  return os.str();
}

}  // namespace rdt
