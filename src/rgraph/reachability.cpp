#include "rgraph/reachability.hpp"

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "rgraph/incremental.hpp"
#include "util/check.hpp"

namespace rdt {

ReachabilityClosure::ReachabilityClosure(const RGraph& graph) : graph_(&graph) {
  const auto nodes = static_cast<std::size_t>(graph.num_nodes());
  const Pattern& p = graph.pattern();

  // Batch = fold of the incremental step: append every node, then every
  // typed edge (RGraph's successor lists erase the process/message
  // distinction, so edges are re-derived from the pattern exactly as the
  // RGraph constructor does), then snapshot each source row into the
  // contiguous closure planes. Message edges are deduplicated only to avoid
  // redundant log entries (IncrementalReach tolerates duplicates).
  IncrementalReach inc;
  for (std::size_t u = 0; u < nodes; ++u) inc.add_node();
  for (ProcessId i = 0; i < p.num_processes(); ++i)
    for (CkptIndex x = 0; x < p.last_ckpt(i); ++x)
      inc.add_edge(p.node_id({i, x}), p.node_id({i, x + 1}), /*message=*/false);
  std::vector<std::pair<int, int>> msg_edges;
  msg_edges.reserve(p.messages().size());
  for (const Message& m : p.messages())
    msg_edges.emplace_back(p.node_id({m.sender, m.send_interval}),
                           p.node_id({m.receiver, m.deliver_interval}));
  std::sort(msg_edges.begin(), msg_edges.end());
  msg_edges.erase(std::unique(msg_edges.begin(), msg_edges.end()), msg_edges.end());
  for (const auto& [u, v] : msg_edges) inc.add_edge(u, v, /*message=*/true);

  reach_ = BitMatrix(nodes, nodes);
  msg_reach_ = BitMatrix(nodes, nodes);
  for (std::size_t a = 0; a < nodes; ++a)
    inc.snapshot(static_cast<int>(a), reach_.row(a), msg_reach_.row(a));

  if constexpr (kAuditsEnabled) audit_reachability_closure(*this);
}

void audit_reachability_closure(const ReachabilityClosure& closure) {
  if constexpr (!kAuditsEnabled) return;
  const RGraph& graph = closure.graph();
  const Pattern& p = graph.pattern();
  const auto nodes = static_cast<std::size_t>(graph.num_nodes());

  // reach: each incremental row must equal an independent BFS from the node.
  std::vector<BitVector> bfs_rows(nodes);
  for (std::size_t u = 0; u < nodes; ++u) {
    bfs_rows[u] = graph.reachable_from(static_cast<int>(u));
    RDT_AUDIT(closure.reach_row(static_cast<int>(u)) == bfs_rows[u],
              "incremental reach closure disagrees with BFS at node " +
                  std::to_string(u));
  }

  // The pre-split full rebuild, verbatim: word-parallel Warshall closure
  // plus the message-edge OR pass — an independent derivation of both
  // planes the incremental fold must reproduce bit for bit.
  BitMatrix warshall(nodes, nodes);
  for (std::size_t u = 0; u < nodes; ++u)
    for (int v : graph.successors(static_cast<int>(u)))
      warshall.set(u, static_cast<std::size_t>(v));
  warshall.close_transitively();

  BitMatrix msg_warshall(nodes, nodes);
  std::vector<std::pair<int, int>> edges;
  edges.reserve(p.messages().size());
  for (const Message& m : p.messages())
    edges.emplace_back(p.node_id({m.sender, m.send_interval}),
                       p.node_id({m.receiver, m.deliver_interval}));
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  for (std::size_t a = 0; a < nodes; ++a) {
    const ConstBitSpan from_a = std::as_const(warshall).row(a);
    const BitSpan out = msg_warshall.row(a);
    for (const auto& [u, v] : edges)
      if (from_a.get(static_cast<std::size_t>(u)))
        out.or_with(std::as_const(warshall).row(static_cast<std::size_t>(v)));
  }
  for (std::size_t a = 0; a < nodes; ++a) {
    RDT_AUDIT(closure.reach_row(static_cast<int>(a)) ==
                  std::as_const(warshall).row(a),
              "incremental reach closure disagrees with the Warshall rebuild "
              "at node " +
                  std::to_string(a));
    RDT_AUDIT(closure.msg_reach_row(static_cast<int>(a)) ==
                  std::as_const(msg_warshall).row(a),
              "incremental msg_reach closure disagrees with the Warshall "
              "rebuild at node " +
                  std::to_string(a));
  }

  // msg_reach: re-derive from the BFS rows — msg_reach(a, b) iff some
  // message edge (u, v) has bfs(a, u) and bfs(v, b).
  std::vector<std::pair<int, int>> msg_edges;
  msg_edges.reserve(p.messages().size());
  for (const Message& m : p.messages())
    msg_edges.emplace_back(p.node_id({m.sender, m.send_interval}),
                           p.node_id({m.receiver, m.deliver_interval}));
  std::sort(msg_edges.begin(), msg_edges.end());
  msg_edges.erase(std::unique(msg_edges.begin(), msg_edges.end()), msg_edges.end());
  for (std::size_t a = 0; a < nodes; ++a) {
    BitVector expect(nodes);
    for (const auto& [u, v] : msg_edges)
      if (bfs_rows[a].get(static_cast<std::size_t>(u)))
        expect.or_with(bfs_rows[static_cast<std::size_t>(v)]);
    RDT_AUDIT(closure.msg_reach_row(static_cast<int>(a)) == expect,
              "msg_reach closure disagrees with BFS re-derivation at node " +
                  std::to_string(a));
  }
}

bool ReachabilityClosure::reach(int from, int to) const {
  RDT_REQUIRE(from >= 0 && from < graph_->num_nodes(), "node id out of range");
  RDT_REQUIRE(to >= 0 && to < graph_->num_nodes(), "node id out of range");
  return reach_.get(static_cast<std::size_t>(from), static_cast<std::size_t>(to));
}

bool ReachabilityClosure::reach(const CkptId& from, const CkptId& to) const {
  return reach(graph_->node(from), graph_->node(to));
}

bool ReachabilityClosure::msg_reach(int from, int to) const {
  RDT_REQUIRE(from >= 0 && from < graph_->num_nodes(), "node id out of range");
  RDT_REQUIRE(to >= 0 && to < graph_->num_nodes(), "node id out of range");
  return msg_reach_.get(static_cast<std::size_t>(from), static_cast<std::size_t>(to));
}

bool ReachabilityClosure::msg_reach(const CkptId& from, const CkptId& to) const {
  return msg_reach(graph_->node(from), graph_->node(to));
}

}  // namespace rdt
