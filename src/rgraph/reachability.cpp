#include "rgraph/reachability.hpp"

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "util/check.hpp"

namespace rdt {

ReachabilityClosure::ReachabilityClosure(const RGraph& graph) : graph_(&graph) {
  const auto nodes = static_cast<std::size_t>(graph.num_nodes());
  reach_ = BitMatrix(nodes, nodes);
  for (std::size_t u = 0; u < nodes; ++u)
    for (int v : graph.successors(static_cast<int>(u)))
      reach_.set(u, static_cast<std::size_t>(v));
  reach_.close_transitively();

  // msg_reach(a, b) iff some message edge (u, v) has reach(a, u) and
  // reach(v, b). Build it by OR-ing, for every message edge, v's reach row
  // into the msg_reach row of every a that reaches u. To keep this
  // word-parallel we iterate nodes a and collect message edges whose source
  // is reachable from a.
  msg_reach_ = BitMatrix(nodes, nodes);
  const Pattern& p = graph.pattern();
  // Deduplicate message edges (many messages can induce the same edge).
  std::vector<std::pair<int, int>> msg_edges;
  msg_edges.reserve(p.messages().size());
  for (const Message& m : p.messages())
    msg_edges.emplace_back(p.node_id({m.sender, m.send_interval}),
                           p.node_id({m.receiver, m.deliver_interval}));
  std::sort(msg_edges.begin(), msg_edges.end());
  msg_edges.erase(std::unique(msg_edges.begin(), msg_edges.end()), msg_edges.end());

  for (std::size_t a = 0; a < nodes; ++a) {
    const ConstBitSpan from_a = std::as_const(reach_).row(a);
    const BitSpan out = msg_reach_.row(a);
    for (const auto& [u, v] : msg_edges)
      if (from_a.get(static_cast<std::size_t>(u)))
        out.or_with(std::as_const(reach_).row(static_cast<std::size_t>(v)));
  }

  if constexpr (kAuditsEnabled) audit_reachability_closure(*this);
}

void audit_reachability_closure(const ReachabilityClosure& closure) {
  if constexpr (!kAuditsEnabled) return;
  const RGraph& graph = closure.graph();
  const Pattern& p = graph.pattern();
  const auto nodes = static_cast<std::size_t>(graph.num_nodes());

  // reach: each Warshall row must equal an independent BFS from the node.
  std::vector<BitVector> bfs_rows(nodes);
  for (std::size_t u = 0; u < nodes; ++u) {
    bfs_rows[u] = graph.reachable_from(static_cast<int>(u));
    RDT_AUDIT(closure.reach_row(static_cast<int>(u)) == bfs_rows[u],
              "Warshall reach closure disagrees with BFS at node " +
                  std::to_string(u));
  }

  // msg_reach: re-derive from the BFS rows — msg_reach(a, b) iff some
  // message edge (u, v) has bfs(a, u) and bfs(v, b).
  std::vector<std::pair<int, int>> msg_edges;
  msg_edges.reserve(p.messages().size());
  for (const Message& m : p.messages())
    msg_edges.emplace_back(p.node_id({m.sender, m.send_interval}),
                           p.node_id({m.receiver, m.deliver_interval}));
  std::sort(msg_edges.begin(), msg_edges.end());
  msg_edges.erase(std::unique(msg_edges.begin(), msg_edges.end()), msg_edges.end());
  for (std::size_t a = 0; a < nodes; ++a) {
    BitVector expect(nodes);
    for (const auto& [u, v] : msg_edges)
      if (bfs_rows[a].get(static_cast<std::size_t>(u)))
        expect.or_with(bfs_rows[static_cast<std::size_t>(v)]);
    RDT_AUDIT(closure.msg_reach_row(static_cast<int>(a)) == expect,
              "msg_reach closure disagrees with BFS re-derivation at node " +
                  std::to_string(a));
  }
}

bool ReachabilityClosure::reach(int from, int to) const {
  RDT_REQUIRE(from >= 0 && from < graph_->num_nodes(), "node id out of range");
  RDT_REQUIRE(to >= 0 && to < graph_->num_nodes(), "node id out of range");
  return reach_.get(static_cast<std::size_t>(from), static_cast<std::size_t>(to));
}

bool ReachabilityClosure::reach(const CkptId& from, const CkptId& to) const {
  return reach(graph_->node(from), graph_->node(to));
}

bool ReachabilityClosure::msg_reach(int from, int to) const {
  RDT_REQUIRE(from >= 0 && from < graph_->num_nodes(), "node id out of range");
  RDT_REQUIRE(to >= 0 && to < graph_->num_nodes(), "node id out of range");
  return msg_reach_.get(static_cast<std::size_t>(from), static_cast<std::size_t>(to));
}

bool ReachabilityClosure::msg_reach(const CkptId& from, const CkptId& to) const {
  return msg_reach(graph_->node(from), graph_->node(to));
}

}  // namespace rdt
