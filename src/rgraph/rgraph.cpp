#include "rgraph/rgraph.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace rdt {

namespace {

void dedupe(std::vector<int>& v) {
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
}

BitVector bfs(const std::vector<std::vector<int>>& adj, int start) {
  BitVector seen(adj.size());
  std::vector<int> stack{start};
  seen.set(static_cast<std::size_t>(start));
  while (!stack.empty()) {
    const int u = stack.back();
    stack.pop_back();
    for (int v : adj[static_cast<std::size_t>(u)]) {
      if (!seen.get(static_cast<std::size_t>(v))) {
        seen.set(static_cast<std::size_t>(v));
        stack.push_back(v);
      }
    }
  }
  return seen;
}

}  // namespace

RGraph::RGraph(const Pattern& pattern) : pattern_(&pattern) {
  const int nodes = pattern.total_ckpts();
  succ_.resize(static_cast<std::size_t>(nodes));
  pred_.resize(static_cast<std::size_t>(nodes));

  auto add_edge = [&](int u, int v) {
    succ_[static_cast<std::size_t>(u)].push_back(v);
    pred_[static_cast<std::size_t>(v)].push_back(u);
  };

  // Process edges.
  for (ProcessId i = 0; i < pattern.num_processes(); ++i)
    for (CkptIndex x = 0; x < pattern.last_ckpt(i); ++x)
      add_edge(pattern.node_id({i, x}), pattern.node_id({i, x + 1}));

  // Message edges: C_{sender,send_interval} -> C_{receiver,deliver_interval}.
  for (const Message& m : pattern.messages())
    add_edge(pattern.node_id({m.sender, m.send_interval}),
             pattern.node_id({m.receiver, m.deliver_interval}));

  for (auto& v : succ_) dedupe(v);
  for (auto& v : pred_) dedupe(v);
  for (const auto& v : succ_) num_edges_ += static_cast<int>(v.size());
}

const std::vector<int>& RGraph::successors(int node) const {
  RDT_REQUIRE(node >= 0 && node < num_nodes(), "node id out of range");
  return succ_[static_cast<std::size_t>(node)];
}

const std::vector<int>& RGraph::predecessors(int node) const {
  RDT_REQUIRE(node >= 0 && node < num_nodes(), "node id out of range");
  return pred_[static_cast<std::size_t>(node)];
}

bool RGraph::has_edge(const CkptId& from, const CkptId& to) const {
  const int u = node(from);
  const int v = node(to);
  const auto& out = succ_[static_cast<std::size_t>(u)];
  return std::binary_search(out.begin(), out.end(), v);
}

BitVector RGraph::reachable_from(int from) const {
  RDT_REQUIRE(from >= 0 && from < num_nodes(), "node id out of range");
  return bfs(succ_, from);
}

BitVector RGraph::reaching_to(int to) const {
  RDT_REQUIRE(to >= 0 && to < num_nodes(), "node id out of range");
  return bfs(pred_, to);
}

}  // namespace rdt
