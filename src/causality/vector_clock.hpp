// Vector clocks — the canonical mechanism for tracking Lamport's
// happened-before relation, and the basis of the transitive dependency
// vectors (TDV) the RDT protocols piggyback.
#pragma once

#include <cstdint>
#include <ostream>
#include <vector>

#include "causality/ids.hpp"

namespace rdt {

// Outcome of comparing two events under a partial order.
enum class CausalOrder {
  kBefore,      // a happened-before b
  kAfter,       // b happened-before a
  kEqual,       // same clock value
  kConcurrent,  // neither ordered
};

std::ostream& operator<<(std::ostream& os, CausalOrder order);

// A classic Fidge–Mattern vector clock over n processes. Entry i counts the
// events of P_i in the causal past (inclusive) of the carrying event.
class VectorClock {
 public:
  VectorClock() = default;
  explicit VectorClock(int num_processes) : entries_(num_processes, 0) {}

  int size() const { return static_cast<int>(entries_.size()); }
  // Back to all-zero over `num_processes` entries, reusing the buffer.
  void reset(int num_processes) {
    entries_.assign(static_cast<std::size_t>(num_processes), 0);
  }

  std::int64_t get(ProcessId p) const;
  void set(ProcessId p, std::int64_t value);

  // Local event at process p: bump its own component.
  void tick(ProcessId p);
  // Component-wise maximum with another clock (message receipt).
  void merge(const VectorClock& other);

  // Partial-order comparison per the standard vector-clock theorem.
  CausalOrder compare(const VectorClock& other) const;
  bool happened_before(const VectorClock& other) const {
    return compare(other) == CausalOrder::kBefore;
  }
  bool concurrent_with(const VectorClock& other) const {
    return compare(other) == CausalOrder::kConcurrent;
  }
  // true iff this clock's knowledge is contained in other's (<=, i.e. before
  // or equal) — "other causally dominates this".
  bool dominated_by(const VectorClock& other) const;

  friend bool operator==(const VectorClock&, const VectorClock&) = default;

 private:
  std::vector<std::int64_t> entries_;
};

std::ostream& operator<<(std::ostream& os, const VectorClock& vc);

}  // namespace rdt
