// Shared identifier types for the whole library.
//
// Conventions (they follow the paper's notation, 0-indexed for processes and
// messages, paper-indexed for checkpoints):
//  * ProcessId  — i in P_i, ranges over [0, n).
//  * MsgId      — dense message identifier assigned in creation order.
//  * EventIndex — position of an event in its process's local sequence.
//  * CkptIndex  — x in C_{i,x}; x = 0 is the initial checkpoint every process
//                 takes, and interval I_{i,x} (x >= 1) is the event sequence
//                 between C_{i,x-1} and C_{i,x}.
#pragma once

#include <compare>
#include <ostream>

namespace rdt {

using ProcessId = int;
using MsgId = int;
using EventIndex = int;
using CkptIndex = int;

inline constexpr MsgId kNoMsg = -1;

// A local checkpoint C_{i,x}, addressed by process and paper index.
struct CkptId {
  ProcessId process = 0;
  CkptIndex index = 0;

  friend auto operator<=>(const CkptId&, const CkptId&) = default;
};

inline std::ostream& operator<<(std::ostream& os, const CkptId& c) {
  return os << "C(" << c.process << ',' << c.index << ')';
}

// An interval I_{i,x}, addressed the same way (x >= 1).
struct IntervalId {
  ProcessId process = 0;
  CkptIndex index = 1;

  friend auto operator<=>(const IntervalId&, const IntervalId&) = default;
};

inline std::ostream& operator<<(std::ostream& os, const IntervalId& iv) {
  return os << "I(" << iv.process << ',' << iv.index << ')';
}

}  // namespace rdt
