#include "causality/vector_clock.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace rdt {

std::ostream& operator<<(std::ostream& os, CausalOrder order) {
  switch (order) {
    case CausalOrder::kBefore: return os << "before";
    case CausalOrder::kAfter: return os << "after";
    case CausalOrder::kEqual: return os << "equal";
    case CausalOrder::kConcurrent: return os << "concurrent";
  }
  return os << "?";
}

std::int64_t VectorClock::get(ProcessId p) const {
  RDT_REQUIRE(p >= 0 && p < size(), "process id out of range");
  return entries_[static_cast<std::size_t>(p)];
}

void VectorClock::set(ProcessId p, std::int64_t value) {
  RDT_REQUIRE(p >= 0 && p < size(), "process id out of range");
  entries_[static_cast<std::size_t>(p)] = value;
}

void VectorClock::tick(ProcessId p) {
  RDT_REQUIRE(p >= 0 && p < size(), "process id out of range");
  ++entries_[static_cast<std::size_t>(p)];
}

void VectorClock::merge(const VectorClock& other) {
  RDT_REQUIRE(other.size() == size(), "clock size mismatch");
  for (std::size_t i = 0; i < entries_.size(); ++i)
    entries_[i] = std::max(entries_[i], other.entries_[i]);
}

CausalOrder VectorClock::compare(const VectorClock& other) const {
  RDT_REQUIRE(other.size() == size(), "clock size mismatch");
  bool less = false;
  bool greater = false;
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    less |= entries_[i] < other.entries_[i];
    greater |= entries_[i] > other.entries_[i];
  }
  if (less && greater) return CausalOrder::kConcurrent;
  if (less) return CausalOrder::kBefore;
  if (greater) return CausalOrder::kAfter;
  return CausalOrder::kEqual;
}

bool VectorClock::dominated_by(const VectorClock& other) const {
  const CausalOrder order = compare(other);
  return order == CausalOrder::kBefore || order == CausalOrder::kEqual;
}

std::ostream& operator<<(std::ostream& os, const VectorClock& vc) {
  os << '[';
  for (int i = 0; i < vc.size(); ++i) {
    if (i > 0) os << ' ';
    os << vc.get(i);
  }
  return os << ']';
}

}  // namespace rdt
