// Lamport scalar clocks. librdt uses them for linearizing events of a
// checkpoint-and-communication pattern consistently with happened-before
// (e.g. when replaying a trace through a protocol) and in tests as the
// textbook sanity baseline against vector clocks.
#pragma once

#include <cstdint>

namespace rdt {

class LamportClock {
 public:
  std::int64_t now() const { return value_; }

  // Local or send event: advance and return the event's timestamp.
  std::int64_t tick() { return ++value_; }

  // Receive event carrying the sender's timestamp: jump past it.
  std::int64_t receive(std::int64_t sender_timestamp) {
    if (sender_timestamp > value_) value_ = sender_timestamp;
    return ++value_;
  }

 private:
  std::int64_t value_ = 0;
};

}  // namespace rdt
