// LamportClock is header-only; this translation unit exists so the causality
// component always produces an archive even if future clocks move out of
// line.
#include "causality/lamport.hpp"
