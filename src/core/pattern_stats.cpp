#include "core/pattern_stats.hpp"

#include <ostream>
#include <vector>

#include "core/chains.hpp"
#include "core/tdv.hpp"
#include "rgraph/zigzag.hpp"

namespace rdt {

PatternStats compute_stats(const RdtAnalyses& analyses) {
  const Pattern& pattern = analyses.pattern();
  PatternStats stats;
  stats.processes = pattern.num_processes();
  stats.messages = pattern.num_messages();
  stats.events = pattern.total_events();
  stats.checkpoints = pattern.total_ckpts();
  for (ProcessId i = 0; i < pattern.num_processes(); ++i)
    if (pattern.last_ckpt(i) > 0 &&
        pattern.ckpt_is_virtual(i, pattern.last_ckpt(i)))
      ++stats.virtual_finals;

  // Causal junctions in one sweep: every send pairs with every earlier
  // delivery of its process.
  std::vector<long long> deliveries_so_far(
      static_cast<std::size_t>(pattern.num_processes()), 0);
  for (const EventRef& e : pattern.topological_order()) {
    const Event& ev = pattern.event(e);
    if (ev.kind == EventKind::kDeliver)
      ++deliveries_so_far[static_cast<std::size_t>(e.process)];
    else if (ev.kind == EventKind::kSend)
      stats.causal_junctions +=
          deliveries_so_far[static_cast<std::size_t>(e.process)];
  }

  const ChainAnalysis& chains = analyses.chains();
  stats.noncausal_junctions =
      static_cast<long long>(chains.noncausal_junctions().size());
  const ChainAnalysis::ZReachStats zreach = chains.zreach_stats();
  stats.zreach_edges = zreach.edges;
  stats.zreach_sccs = zreach.sccs;
  stats.zreach_largest_scc = zreach.largest_scc;
  stats.zreach_sweep_ms = zreach.sweep_ms;

  const TdvAnalysis& tdv = analyses.tdv();
  const ReachabilityClosure& closure = analyses.closure();
  for (int u = 0; u < pattern.total_ckpts(); ++u) {
    const CkptId a = pattern.node_ckpt(u);
    const ConstBitSpan row = closure.msg_reach_row(u);
    for (std::size_t v = row.find_next(0); v < row.size();
         v = row.find_next(v + 1))
      if (!tdv.trackable(a, pattern.node_ckpt(static_cast<int>(v))))
        ++stats.hidden_dependencies;
    if (on_zigzag_cycle(closure, a)) ++stats.useless_checkpoints;
  }
  return stats;
}

PatternStats compute_stats(const Pattern& pattern) {
  const RdtAnalyses analyses(pattern);
  return compute_stats(analyses);
}

std::ostream& operator<<(std::ostream& os, const PatternStats& stats) {
  os << "pattern: " << stats.processes << " processes, " << stats.messages
     << " messages, " << stats.events << " events, " << stats.checkpoints
     << " checkpoints (" << stats.virtual_finals << " virtual)\n"
     << "junctions: " << stats.causal_junctions << " causal, "
     << stats.noncausal_junctions << " non-causal\n"
     << "z-reach engine: " << stats.zreach_edges << " edges, "
     << stats.zreach_sccs << " SCCs (largest " << stats.zreach_largest_scc
     << "), sweep " << stats.zreach_sweep_ms << " ms\n"
     << "hidden dependencies: " << stats.hidden_dependencies
     << ", useless checkpoints: " << stats.useless_checkpoints << " — RDT "
     << (stats.rdt() ? "holds" : "violated") << '\n';
  return os;
}

}  // namespace rdt
