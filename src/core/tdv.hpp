// Transitive Dependency Vectors (TDV) — Section 3.3 of the paper.
//
// Each process P_i maintains TDV_i[1..n]; TDV_i[i] is the index of the
// current checkpoint interval, and TDV_i[j] records the highest checkpoint
// interval of P_j the current local state causally depends on through
// message chains. Vectors are piggybacked on every message and merged
// (component-wise max) at delivery; taking checkpoint C_{i,x} saves the
// current vector as TDV_{i,x} and bumps the own entry.
//
// TdvAnalysis replays this mechanism offline over a finished Pattern and
// exposes:
//  * the vector saved at every checkpoint and piggybacked on every message;
//  * the *on-line trackability* relation: the R-path C_{i,x} -> C_{j,y} is
//    on-line trackable iff i == j && x <= y, or TDV_{j,y}[i] >= x — i.e. a
//    causal message chain from an interval of P_i at or after I_{i,x}
//    reaches P_j at or before C_{j,y}.
#pragma once

#include <vector>

#include "ccp/consistency.hpp"
#include "ccp/pattern.hpp"

namespace rdt {

// An integer dependency vector; entry j refers to a checkpoint interval
// index of P_j.
using Tdv = std::vector<CkptIndex>;

// The pure incremental TDV step — exactly the per-event transition the
// paper's protocols run (S0/S1/S2 of Figure 6), with no pattern and no
// event order of its own. One machine holds the live TDV_i of every
// process; the caller drives it event by event in any order consistent
// with happened-before:
//   * send(i, out)        — snapshot TDV_i into `out` (the piggyback);
//   * deliver(j, piggy)   — TDV_j := max(TDV_j, piggy) componentwise;
//   * checkpoint(i, out)  — save TDV_i into `out`, then bump the own entry.
// The constructor performs the paper's initialization: all zero, the
// implicit initial checkpoint C_{i,0} saves the zero vector (the caller
// records that directly), and the own entry becomes 1 — the index of
// I_{i,1}. TdvAnalysis is the batch wrapper that folds these steps over a
// finished Pattern's topological order; the online engine feeds the same
// machine one event at a time.
class TdvMachine {
 public:
  explicit TdvMachine(int num_processes);

  // Back to the constructor's initial state over `num_processes` processes,
  // reusing the existing vectors' capacity where the count allows.
  void reset(int num_processes);

  int num_processes() const { return static_cast<int>(current_.size()); }

  // The live vector TDV_i (own entry = current interval index).
  const Tdv& at(ProcessId i) const {
    return current_[static_cast<std::size_t>(i)];
  }

  // Snapshot the sender's vector into `piggyback` (assignment reuses the
  // target's capacity, so recycled payload slots stay allocation-free).
  void send(ProcessId sender, Tdv& piggyback) const {
    piggyback = current_[static_cast<std::size_t>(sender)];
  }

  // Merge a piggybacked vector into the receiver's (componentwise max).
  void deliver(ProcessId receiver, const Tdv& piggyback);

  // Save the vector of C_{p, current interval} into `saved`, then advance
  // the own entry to the new interval's index.
  void checkpoint(ProcessId p, Tdv& saved);

 private:
  std::vector<Tdv> current_;
};

class TdvAnalysis {
 public:
  explicit TdvAnalysis(const Pattern& pattern);
  // The analysis keeps a reference to the pattern; a temporary would dangle.
  explicit TdvAnalysis(Pattern&&) = delete;

  const Pattern& pattern() const { return *pattern_; }

  // The vector saved when C_{p,x} was taken (own entry equals x).
  const Tdv& at_ckpt(const CkptId& c) const;
  // The vector piggybacked on message m (value of the sender's TDV at send).
  const Tdv& on_msg(MsgId m) const;

  // On-line trackability of the R-path from -> to (Definition 3.3 in TDV
  // form). Returns true for same-process paths with from.index <= to.index.
  bool trackable(const CkptId& from, const CkptId& to) const;

  // The paper's Corollary 4.5: TDV_{i,x}, read as a global checkpoint,
  // is the minimum consistent global checkpoint containing C_{i,x}
  // (guaranteed when the pattern satisfies RDT).
  GlobalCkpt min_global_ckpt(const CkptId& c) const;

 private:
  const Pattern* pattern_;
  // ckpt_tdv_[node_id(c)] = vector saved at c.
  std::vector<Tdv> ckpt_tdv_;
  std::vector<Tdv> msg_tdv_;
};

// Audit-tier (RDT_AUDIT) cross-validation: re-derives every saved and
// piggybacked vector with the pre-split batch replay loop (inline
// snapshot/merge/save, no TdvMachine) and compares them entry for entry.
// No-op unless the build defines RDT_AUDITS; invoked automatically by the
// TdvAnalysis constructor in audit builds.
void audit_tdv_analysis(const TdvAnalysis& analysis);

}  // namespace rdt
