// Transitive Dependency Vectors (TDV) — Section 3.3 of the paper.
//
// Each process P_i maintains TDV_i[1..n]; TDV_i[i] is the index of the
// current checkpoint interval, and TDV_i[j] records the highest checkpoint
// interval of P_j the current local state causally depends on through
// message chains. Vectors are piggybacked on every message and merged
// (component-wise max) at delivery; taking checkpoint C_{i,x} saves the
// current vector as TDV_{i,x} and bumps the own entry.
//
// TdvAnalysis replays this mechanism offline over a finished Pattern and
// exposes:
//  * the vector saved at every checkpoint and piggybacked on every message;
//  * the *on-line trackability* relation: the R-path C_{i,x} -> C_{j,y} is
//    on-line trackable iff i == j && x <= y, or TDV_{j,y}[i] >= x — i.e. a
//    causal message chain from an interval of P_i at or after I_{i,x}
//    reaches P_j at or before C_{j,y}.
#pragma once

#include <algorithm>
#include <cstddef>
#include <utility>
#include <vector>

#include "ccp/consistency.hpp"
#include "ccp/pattern.hpp"
#include "util/check.hpp"
#include "util/mem_accounting.hpp"

namespace rdt {

// An integer dependency vector; entry j refers to a checkpoint interval
// index of P_j.
using Tdv = std::vector<CkptIndex>;

// The saved-TDV history of one process, windowed for prefix compaction.
//
// The online engine keeps TDV_{p,x} for every frozen checkpoint C_{p,x}
// because a junction targeting C_{p,x} can be discovered arbitrarily late —
// but only while C_{p,x} is strictly above the recovery line: a junction
// verdict's frozen target always carries an in-edge from a still-volatile
// node, so it is invalid in the current sweep and therefore above the line.
// Once the line passes x the row can never be read again, and
// release_through() returns its buffer to the caller's recycling pool.
//
// Window layout: rows are stored for indices (base(), base()+size()]; the
// saved vector of C_{p,x} lives at rows_[x - base() - 1]. base() starts at
// 0 (C_{p,0} saves the all-zero vector, which the engine never stores) and
// only grows.
class SavedTdvWindow {
 public:
  CkptIndex base() const { return base_; }
  std::size_t size() const { return rows_.size(); }
  // Highest index with a resident row (== the process's durable index when
  // the engine keeps the window current).
  CkptIndex last_index() const {
    return base_ + static_cast<CkptIndex>(rows_.size());
  }

  bool contains(CkptIndex x) const { return x > base_ && x <= last_index(); }

  const Tdv& at(CkptIndex x) const {
    RDT_CHECK(contains(x), "saved-TDV row is not resident in the window");
    return rows_[static_cast<std::size_t>(x - base_ - 1)];
  }

  // Append the row for index last_index()+1, drawing buffer capacity from
  // `pool` when available so the steady-state path never allocates.
  Tdv& emplace_back(std::vector<Tdv>& pool) {
    if (pool.empty()) return rows_.emplace_back();
    Tdv& row = rows_.emplace_back(std::move(pool.back()));
    pool.pop_back();
    row.clear();
    return row;
  }

  // Release every resident row with index <= stable into `pool` and advance
  // the base; returns how many rows were released.
  std::size_t release_through(CkptIndex stable, std::vector<Tdv>& pool) {
    if (stable <= base_) return 0;
    const auto drop = std::min(static_cast<std::size_t>(stable - base_),
                               rows_.size());
    for (std::size_t i = 0; i < drop; ++i)
      pool.push_back(std::move(rows_[i]));
    rows_.erase(rows_.begin(),
                rows_.begin() + static_cast<std::ptrdiff_t>(drop));
    base_ += static_cast<CkptIndex>(drop);
    return drop;
  }

  // Back to an empty window at base 0, recycling every row into `pool`.
  void reset(std::vector<Tdv>& pool) {
    for (Tdv& row : rows_) pool.push_back(std::move(row));
    rows_.clear();
    base_ = 0;
  }

  std::size_t resident_bytes() const { return mem::nested_vec_bytes(rows_); }

 private:
  std::vector<Tdv> rows_;
  CkptIndex base_ = 0;
};

// The pure incremental TDV step — exactly the per-event transition the
// paper's protocols run (S0/S1/S2 of Figure 6), with no pattern and no
// event order of its own. One machine holds the live TDV_i of every
// process; the caller drives it event by event in any order consistent
// with happened-before:
//   * send(i, out)        — snapshot TDV_i into `out` (the piggyback);
//   * deliver(j, piggy)   — TDV_j := max(TDV_j, piggy) componentwise;
//   * checkpoint(i, out)  — save TDV_i into `out`, then bump the own entry.
// The constructor performs the paper's initialization: all zero, the
// implicit initial checkpoint C_{i,0} saves the zero vector (the caller
// records that directly), and the own entry becomes 1 — the index of
// I_{i,1}. TdvAnalysis is the batch wrapper that folds these steps over a
// finished Pattern's topological order; the online engine feeds the same
// machine one event at a time.
class TdvMachine {
 public:
  explicit TdvMachine(int num_processes);

  // Back to the constructor's initial state over `num_processes` processes,
  // reusing the existing vectors' capacity where the count allows.
  void reset(int num_processes);

  int num_processes() const { return static_cast<int>(current_.size()); }

  // The live vector TDV_i (own entry = current interval index).
  const Tdv& at(ProcessId i) const {
    return current_[static_cast<std::size_t>(i)];
  }

  // Snapshot the sender's vector into `piggyback` (assignment reuses the
  // target's capacity, so recycled payload slots stay allocation-free).
  void send(ProcessId sender, Tdv& piggyback) const {
    piggyback = current_[static_cast<std::size_t>(sender)];
  }

  // Merge a piggybacked vector into the receiver's (componentwise max).
  void deliver(ProcessId receiver, const Tdv& piggyback);

  // Save the vector of C_{p, current interval} into `saved`, then advance
  // the own entry to the new interval's index.
  void checkpoint(ProcessId p, Tdv& saved);

 private:
  std::vector<Tdv> current_;
};

class TdvAnalysis {
 public:
  explicit TdvAnalysis(const Pattern& pattern);
  // The analysis keeps a reference to the pattern; a temporary would dangle.
  explicit TdvAnalysis(Pattern&&) = delete;

  const Pattern& pattern() const { return *pattern_; }

  // The vector saved when C_{p,x} was taken (own entry equals x).
  const Tdv& at_ckpt(const CkptId& c) const;
  // The vector piggybacked on message m (value of the sender's TDV at send).
  const Tdv& on_msg(MsgId m) const;

  // On-line trackability of the R-path from -> to (Definition 3.3 in TDV
  // form). Returns true for same-process paths with from.index <= to.index.
  bool trackable(const CkptId& from, const CkptId& to) const;

  // The paper's Corollary 4.5: TDV_{i,x}, read as a global checkpoint,
  // is the minimum consistent global checkpoint containing C_{i,x}
  // (guaranteed when the pattern satisfies RDT).
  GlobalCkpt min_global_ckpt(const CkptId& c) const;

 private:
  const Pattern* pattern_;
  // ckpt_tdv_[node_id(c)] = vector saved at c.
  std::vector<Tdv> ckpt_tdv_;
  std::vector<Tdv> msg_tdv_;
};

// Audit-tier (RDT_AUDIT) cross-validation: re-derives every saved and
// piggybacked vector with the pre-split batch replay loop (inline
// snapshot/merge/save, no TdvMachine) and compares them entry for entry.
// No-op unless the build defines RDT_AUDITS; invoked automatically by the
// TdvAnalysis constructor in audit builds.
void audit_tdv_analysis(const TdvAnalysis& analysis);

}  // namespace rdt
