#include "core/tdv.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace rdt {

TdvAnalysis::TdvAnalysis(const Pattern& pattern) : pattern_(&pattern) {
  const auto n = static_cast<std::size_t>(pattern.num_processes());
  ckpt_tdv_.resize(static_cast<std::size_t>(pattern.total_ckpts()));
  msg_tdv_.resize(static_cast<std::size_t>(pattern.num_messages()));

  // current[i] = TDV_i during the replay. Protocol initialization (S0): all
  // entries zero, then the initial checkpoint C_{i,0} is taken (saving the
  // all-zero vector) and the own entry becomes 1 — the index of I_{i,1}.
  std::vector<Tdv> current(n, Tdv(n, 0));
  for (ProcessId i = 0; i < pattern.num_processes(); ++i) {
    ckpt_tdv_[static_cast<std::size_t>(pattern.node_id({i, 0}))] =
        current[static_cast<std::size_t>(i)];
    current[static_cast<std::size_t>(i)][static_cast<std::size_t>(i)] = 1;
  }

  for (const EventRef& e : pattern.topological_order()) {
    Tdv& tdv = current[static_cast<std::size_t>(e.process)];
    const Event& ev = pattern.event(e);
    switch (ev.kind) {
      case EventKind::kSend:
        msg_tdv_[static_cast<std::size_t>(ev.msg)] = tdv;
        break;
      case EventKind::kDeliver: {
        const Tdv& piggy = msg_tdv_[static_cast<std::size_t>(ev.msg)];
        for (std::size_t k = 0; k < n; ++k) tdv[k] = std::max(tdv[k], piggy[k]);
        break;
      }
      case EventKind::kCheckpoint:
        ckpt_tdv_[static_cast<std::size_t>(
            pattern.node_id({e.process, ev.ckpt}))] = tdv;
        ++tdv[static_cast<std::size_t>(e.process)];
        break;
      case EventKind::kInternal:
        break;
    }
  }
}

const Tdv& TdvAnalysis::at_ckpt(const CkptId& c) const {
  return ckpt_tdv_[static_cast<std::size_t>(pattern_->node_id(c))];
}

const Tdv& TdvAnalysis::on_msg(MsgId m) const {
  RDT_REQUIRE(m >= 0 && m < pattern_->num_messages(), "message id out of range");
  return msg_tdv_[static_cast<std::size_t>(m)];
}

bool TdvAnalysis::trackable(const CkptId& from, const CkptId& to) const {
  if (from.process == to.process) return from.index <= to.index;
  return at_ckpt(to)[static_cast<std::size_t>(from.process)] >= from.index;
}

GlobalCkpt TdvAnalysis::min_global_ckpt(const CkptId& c) const {
  GlobalCkpt g;
  g.indices = at_ckpt(c);
  g.indices[static_cast<std::size_t>(c.process)] = c.index;
  return g;
}

}  // namespace rdt
