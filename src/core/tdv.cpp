#include "core/tdv.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace rdt {

TdvMachine::TdvMachine(int num_processes) {
  RDT_REQUIRE(num_processes >= 1, "need at least one process");
  const auto n = static_cast<std::size_t>(num_processes);
  current_.assign(n, Tdv(n, 0));
  // S0: the initial checkpoint C_{i,0} saves the all-zero vector, then the
  // own entry becomes 1 — the index of I_{i,1}.
  for (std::size_t i = 0; i < n; ++i) current_[i][i] = 1;
}

void TdvMachine::reset(int num_processes) {
  RDT_REQUIRE(num_processes >= 1, "need at least one process");
  const auto n = static_cast<std::size_t>(num_processes);
  current_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    current_[i].assign(n, 0);
    current_[i][i] = 1;
  }
}

void TdvMachine::deliver(ProcessId receiver, const Tdv& piggyback) {
  Tdv& tdv = current_[static_cast<std::size_t>(receiver)];
  RDT_CHECK(piggyback.size() == tdv.size(),
            "piggybacked TDV size disagrees with the machine's process count");
  for (std::size_t k = 0; k < tdv.size(); ++k)
    tdv[k] = std::max(tdv[k], piggyback[k]);
}

void TdvMachine::checkpoint(ProcessId p, Tdv& saved) {
  Tdv& tdv = current_[static_cast<std::size_t>(p)];
  saved = tdv;
  ++tdv[static_cast<std::size_t>(p)];
}

TdvAnalysis::TdvAnalysis(const Pattern& pattern) : pattern_(&pattern) {
  const auto n = static_cast<std::size_t>(pattern.num_processes());
  ckpt_tdv_.resize(static_cast<std::size_t>(pattern.total_ckpts()));
  msg_tdv_.resize(static_cast<std::size_t>(pattern.num_messages()));

  // Batch = fold of the incremental step over the topological event order.
  // The machine starts past the initial checkpoints, whose saved vectors
  // are the all-zero ones recorded here.
  TdvMachine machine(pattern.num_processes());
  for (ProcessId i = 0; i < pattern.num_processes(); ++i)
    ckpt_tdv_[static_cast<std::size_t>(pattern.node_id({i, 0}))] = Tdv(n, 0);

  for (const EventRef& e : pattern.topological_order()) {
    const Event& ev = pattern.event(e);
    switch (ev.kind) {
      case EventKind::kSend:
        machine.send(e.process, msg_tdv_[static_cast<std::size_t>(ev.msg)]);
        break;
      case EventKind::kDeliver:
        machine.deliver(e.process, msg_tdv_[static_cast<std::size_t>(ev.msg)]);
        break;
      case EventKind::kCheckpoint:
        machine.checkpoint(e.process,
                           ckpt_tdv_[static_cast<std::size_t>(
                               pattern.node_id({e.process, ev.ckpt}))]);
        break;
      case EventKind::kInternal:
        break;
    }
  }

  if constexpr (kAuditsEnabled) audit_tdv_analysis(*this);
}

void audit_tdv_analysis(const TdvAnalysis& analysis) {
  if constexpr (!kAuditsEnabled) return;
  const Pattern& pattern = analysis.pattern();
  const auto n = static_cast<std::size_t>(pattern.num_processes());

  // The pre-split batch loop, verbatim: inline snapshot / merge / save with
  // no TdvMachine in sight — an independent derivation of every vector.
  std::vector<Tdv> ckpt_tdv(static_cast<std::size_t>(pattern.total_ckpts()));
  std::vector<Tdv> msg_tdv(static_cast<std::size_t>(pattern.num_messages()));
  std::vector<Tdv> current(n, Tdv(n, 0));
  for (ProcessId i = 0; i < pattern.num_processes(); ++i) {
    ckpt_tdv[static_cast<std::size_t>(pattern.node_id({i, 0}))] =
        current[static_cast<std::size_t>(i)];
    current[static_cast<std::size_t>(i)][static_cast<std::size_t>(i)] = 1;
  }
  for (const EventRef& e : pattern.topological_order()) {
    Tdv& tdv = current[static_cast<std::size_t>(e.process)];
    const Event& ev = pattern.event(e);
    switch (ev.kind) {
      case EventKind::kSend:
        msg_tdv[static_cast<std::size_t>(ev.msg)] = tdv;
        break;
      case EventKind::kDeliver: {
        const Tdv& piggy = msg_tdv[static_cast<std::size_t>(ev.msg)];
        for (std::size_t k = 0; k < n; ++k) tdv[k] = std::max(tdv[k], piggy[k]);
        break;
      }
      case EventKind::kCheckpoint:
        ckpt_tdv[static_cast<std::size_t>(
            pattern.node_id({e.process, ev.ckpt}))] = tdv;
        ++tdv[static_cast<std::size_t>(e.process)];
        break;
      case EventKind::kInternal:
        break;
    }
  }

  for (int node = 0; node < pattern.total_ckpts(); ++node)
    RDT_AUDIT(analysis.at_ckpt(pattern.node_ckpt(node)) ==
                  ckpt_tdv[static_cast<std::size_t>(node)],
              "machine-folded checkpoint TDV disagrees with the direct batch "
              "replay");
  for (MsgId m = 0; m < pattern.num_messages(); ++m)
    RDT_AUDIT(analysis.on_msg(m) == msg_tdv[static_cast<std::size_t>(m)],
              "machine-folded message TDV disagrees with the direct batch "
              "replay");
}

const Tdv& TdvAnalysis::at_ckpt(const CkptId& c) const {
  return ckpt_tdv_[static_cast<std::size_t>(pattern_->node_id(c))];
}

const Tdv& TdvAnalysis::on_msg(MsgId m) const {
  RDT_REQUIRE(m >= 0 && m < pattern_->num_messages(), "message id out of range");
  return msg_tdv_[static_cast<std::size_t>(m)];
}

bool TdvAnalysis::trackable(const CkptId& from, const CkptId& to) const {
  if (from.process == to.process) return from.index <= to.index;
  return at_ckpt(to)[static_cast<std::size_t>(from.process)] >= from.index;
}

GlobalCkpt TdvAnalysis::min_global_ckpt(const CkptId& c) const {
  GlobalCkpt g;
  g.indices = at_ckpt(c);
  g.indices[static_cast<std::size_t>(c.process)] = c.index;
  return g;
}

}  // namespace rdt
