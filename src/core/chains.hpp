// Message-chain (Z-path) machinery — Sections 3.2/3.3 of the paper.
//
// A message chain [m_1 ... m_q] composes consecutive messages at a common
// process: delivery(m_a) in I_{k,s}, send(m_{a+1}) in I_{k,t}, s <= t
// (Definition 3.1, Netzer–Xu's zigzag). A *junction* is:
//  * causal      — delivery(m_a) locally precedes send(m_{a+1});
//  * non-causal  — send(m_{a+1}) precedes delivery(m_a) in the same interval.
// A chain is causal iff all junctions are; it is *simple* iff every junction
// has delivery and next send in the same interval (no checkpoint crossed
// inside the chain — the property the protocol's `simple` array tracks).
//
// ChainAnalysis computes, per message m, the set of checkpoints C_{k,z} such
// that a causal (resp. simple causal) chain starting with a send in I_{k,z}
// ends exactly with m. From this every characterization checker is built:
//
//  * MM-path  — a two-message chain across a non-causal junction;
//  * CM-path  — a causal chain followed by one message across a non-causal
//               junction (MM is the special case of a one-message prefix);
//  * doubling — a CM/MM/Z-path from C_{k,z} to C_{j,y} is *doubled* when the
//               R-path it induces is on-line trackable (a causal chain from
//               an interval of P_k at or after z reaches P_j at or before y);
//  * visible doubling — doubled by a causal chain whose last send is in the
//               causal past of the junction's delivery event, i.e. the
//               doubling is knowable at the moment a protocol must decide
//               whether to break the junction.
#pragma once

#include <optional>
#include <utility>
#include <vector>

#include "ccp/pattern.hpp"
#include "core/tdv.hpp"
#include "util/bit_matrix.hpp"

namespace rdt {

// A non-causal junction: `incoming` is delivered at a process after
// `outgoing` was sent by that process in the same checkpoint interval.
// Every Z-path that is not causal crosses at least one such junction.
struct NonCausalJunction {
  MsgId incoming = kNoMsg;   // the paper's m (ends the chain prefix)
  MsgId outgoing = kNoMsg;   // the paper's m' (already sent to P_j)
  ProcessId at = -1;         // the process that could break the chain here
  friend auto operator<=>(const NonCausalJunction&, const NonCausalJunction&) = default;
};

class ChainAnalysis {
 public:
  explicit ChainAnalysis(const Pattern& pattern);
  // The analysis keeps a reference to the pattern; a temporary would dangle.
  explicit ChainAnalysis(Pattern&&) = delete;

  const Pattern& pattern() const { return *pattern_; }

  // Can [a, b] appear consecutively in a chain (Definition 3.1)?
  bool junction(MsgId a, MsgId b) const;
  bool causal_junction(MsgId a, MsgId b) const;
  bool noncausal_junction(MsgId a, MsgId b) const;

  // All non-causal junctions of the pattern.
  const std::vector<NonCausalJunction>& noncausal_junctions() const {
    return noncausal_;
  }

  // Bitset over the pattern's dense checkpoint-node numbering: bit
  // node_id({k,z}) is set iff a causal chain from C_{k,z} (first send in
  // I_{k,z}) ends exactly with message m. Includes the trivial chain [m]
  // itself (bit {sender(m), send_interval(m)}).
  const BitVector& causal_starts(MsgId m) const;
  // Same restricted to simple causal chains.
  const BitVector& simple_causal_starts(MsgId m) const;

  // Does a causal (resp. simple causal) chain from C_{k,z'} with z' >= z end
  // exactly with m? (The doubling relation tolerates later start intervals.)
  bool causal_start_at_or_after(MsgId m, ProcessId k, CkptIndex z) const;
  bool simple_causal_start_at_or_after(MsgId m, ProcessId k, CkptIndex z) const;

  // Highest z such that a causal chain from C_{k,z} ends exactly with m
  // (0 if none).
  CkptIndex max_causal_start(MsgId m, ProcessId k) const;

  // ---- brute-force Z-path reachability (cross-validation; O(M^2) space) ---
  // Exists a chain whose first send is in I_{from} and last delivery in
  // I_{to} (endpoint intervals exact)? `causal_only` restricts to causal
  // chains. Computed lazily on first call via a fixpoint over the junction
  // graph (which may contain cycles — zigzag cycles).
  bool zpath_between_intervals(const IntervalId& from, const IntervalId& to,
                               bool causal_only = false) const;

  // An explicit witness chain [m_1 ... m_q] with send(m_1) in I_{from} and
  // delivery(m_q) in I_{to}, or nullopt if none exists. BFS over the
  // junction graph, so the witness has minimal message count.
  std::optional<std::vector<MsgId>> find_chain(const IntervalId& from,
                                               const IntervalId& to,
                                               bool causal_only = false) const;

 private:
  BitVector starts_row(MsgId m, const std::vector<BitVector>& table) const;
  void ensure_zreach(bool causal_only) const;

  const Pattern* pattern_;
  std::vector<NonCausalJunction> noncausal_;
  std::vector<BitVector> causal_starts_;         // per message
  std::vector<BitVector> simple_causal_starts_;  // per message

  // Lazy: per message, bitset of interval nodes its chains can end in.
  mutable std::vector<BitVector> z_ends_;
  mutable std::vector<BitVector> causal_z_ends_;
  mutable bool z_ends_ready_ = false;
  mutable bool causal_z_ends_ready_ = false;
};

}  // namespace rdt
