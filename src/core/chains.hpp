// Message-chain (Z-path) machinery — Sections 3.2/3.3 of the paper.
//
// A message chain [m_1 ... m_q] composes consecutive messages at a common
// process: delivery(m_a) in I_{k,s}, send(m_{a+1}) in I_{k,t}, s <= t
// (Definition 3.1, Netzer–Xu's zigzag). A *junction* is:
//  * causal      — delivery(m_a) locally precedes send(m_{a+1});
//  * non-causal  — send(m_{a+1}) precedes delivery(m_a) in the same interval.
// A chain is causal iff all junctions are; it is *simple* iff every junction
// has delivery and next send in the same interval (no checkpoint crossed
// inside the chain — the property the protocol's `simple` array tracks).
//
// ChainAnalysis computes, per message m, the set of checkpoints C_{k,z} such
// that a causal (resp. simple causal) chain starting with a send in I_{k,z}
// ends exactly with m. From this every characterization checker is built:
//
//  * MM-path  — a two-message chain across a non-causal junction;
//  * CM-path  — a causal chain followed by one message across a non-causal
//               junction (MM is the special case of a one-message prefix);
//  * doubling — a CM/MM/Z-path from C_{k,z} to C_{j,y} is *doubled* when the
//               R-path it induces is on-line trackable (a causal chain from
//               an interval of P_k at or after z reaches P_j at or before y);
//  * visible doubling — doubled by a causal chain whose last send is in the
//               causal past of the junction's delivery event, i.e. the
//               doubling is knowable at the moment a protocol must decide
//               whether to break the junction.
//
// Chain reachability (`zpath_between_intervals`, `find_chain`) runs on the
// *junction graph*: one node per message, an edge a -> b whenever [a, b] can
// appear consecutively in a chain. Because a message's successors are always
// sends of its receiving process — the sends of the delivery interval that
// precede the delivery (non-causal), then every later send (causal) — the
// adjacency of each node is a contiguous suffix of the receiver's
// position-sorted send list. The graph is therefore stored implicitly in CSR
// fashion: per-process send lists plus two range offsets per message, built
// in O(M log M) without the all-pairs junction scan. Reachability condenses
// this graph with Tarjan's SCC algorithm (zigzag cycles collapse to single
// condensation nodes) and propagates checkpoint bitsets in one reverse-
// topological word-parallel sweep — no fixpoint iteration.
#pragma once

#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "ccp/pattern.hpp"
#include "core/tdv.hpp"
#include "util/bit_matrix.hpp"

namespace rdt {

// A non-causal junction: `incoming` is delivered at a process after
// `outgoing` was sent by that process in the same checkpoint interval.
// Every Z-path that is not causal crosses at least one such junction.
struct NonCausalJunction {
  MsgId incoming = kNoMsg;   // the paper's m (ends the chain prefix)
  MsgId outgoing = kNoMsg;   // the paper's m' (already sent to P_j)
  ProcessId at = -1;         // the process that could break the chain here
  friend auto operator<=>(const NonCausalJunction&, const NonCausalJunction&) = default;
};

class ChainAnalysis {
 public:
  explicit ChainAnalysis(const Pattern& pattern);
  // The analysis keeps a reference to the pattern; a temporary would dangle.
  explicit ChainAnalysis(Pattern&&) = delete;
  // The lazily built reachability tables are guarded by std::once_flag,
  // which pins the object in place.
  ChainAnalysis(const ChainAnalysis&) = delete;
  ChainAnalysis& operator=(const ChainAnalysis&) = delete;

  const Pattern& pattern() const { return *pattern_; }

  // Can [a, b] appear consecutively in a chain (Definition 3.1)?
  bool junction(MsgId a, MsgId b) const;
  bool causal_junction(MsgId a, MsgId b) const;
  bool noncausal_junction(MsgId a, MsgId b) const;

  // All non-causal junctions of the pattern.
  const std::vector<NonCausalJunction>& noncausal_junctions() const {
    return noncausal_;
  }

  // Bitset over the pattern's dense checkpoint-node numbering: bit
  // node_id({k,z}) is set iff a causal chain from C_{k,z} (first send in
  // I_{k,z}) ends exactly with message m. Includes the trivial chain [m]
  // itself (bit {sender(m), send_interval(m)}).
  const BitVector& causal_starts(MsgId m) const;
  // Same restricted to simple causal chains.
  const BitVector& simple_causal_starts(MsgId m) const;

  // Does a causal (resp. simple causal) chain from C_{k,z'} with z' >= z end
  // exactly with m? (The doubling relation tolerates later start intervals.)
  bool causal_start_at_or_after(MsgId m, ProcessId k, CkptIndex z) const;
  bool simple_causal_start_at_or_after(MsgId m, ProcessId k, CkptIndex z) const;

  // Highest z such that a causal chain from C_{k,z} ends exactly with m
  // (0 if none). O(1): the per-process maxima are precomputed.
  CkptIndex max_causal_start(MsgId m, ProcessId k) const;

  // ---- Z-path reachability over the junction graph ------------------------
  // Exists a chain whose first send is in I_{from} and last delivery in
  // I_{to} (endpoint intervals exact)? `causal_only` restricts to causal
  // chains. The SCC-condensed reachability table is built on first use
  // (std::call_once; safe to share one analysis across threads).
  bool zpath_between_intervals(const IntervalId& from, const IntervalId& to,
                               bool causal_only = false) const;

  // An explicit witness chain [m_1 ... m_q] with send(m_1) in I_{from} and
  // delivery(m_q) in I_{to}, or nullopt if none exists. BFS over the
  // junction-graph CSR adjacency, so the witness has minimal message count.
  std::optional<std::vector<MsgId>> find_chain(const IntervalId& from,
                                               const IntervalId& to,
                                               bool causal_only = false) const;

  // ---- engine introspection ------------------------------------------------
  struct ZReachStats {
    long long edges = 0;         // junction-graph edges (causal + non-causal)
    long long causal_edges = 0;  // causal subgraph edges
    int sccs = 0;                // condensation nodes of the full graph
    int largest_scc = 0;         // messages in the largest zigzag cycle
    double sweep_ms = 0.0;       // SCC + bit-propagation time, full graph
  };
  // Forces the full-graph reachability build and reports its shape/cost.
  ZReachStats zreach_stats() const;
  // Edge counts alone are known from construction (no reachability build).
  long long junction_edges() const { return edges_; }
  long long causal_junction_edges() const { return causal_edges_; }

 private:
  // Condensed reachability: per message its condensation node, per
  // condensation node the interval-end checkpoints its chains can reach.
  struct ZReachTable {
    std::vector<int> comp;        // per message
    std::vector<BitVector> rows;  // per condensation node
    int largest_scc = 0;
    double sweep_ms = 0.0;
  };

  void build_zreach(bool causal_only) const;
  const ZReachTable& zreach(bool causal_only) const;
  // Successor range of message m in sends_by_proc_[receiver(m)]:
  // [succ_begin_, size) for general chains, [succ_causal_begin_, size) for
  // causal-only ones (non-causal successors occupy the gap between the two).
  std::pair<std::size_t, std::size_t> succ_range(MsgId m, bool causal_only) const;

  const Pattern* pattern_;
  std::vector<NonCausalJunction> noncausal_;
  std::vector<BitVector> causal_starts_;         // per message
  std::vector<BitVector> simple_causal_starts_;  // per message
  // max_causal_start_[m * n + k] = highest z with causal_starts bit {k,z}
  // set (0 if none); same layout for the simple variant.
  std::vector<CkptIndex> max_causal_start_;
  std::vector<CkptIndex> max_simple_start_;

  // Implicit junction-graph CSR (see file comment).
  std::vector<std::vector<MsgId>> sends_by_proc_;  // sorted by send_pos
  std::vector<std::size_t> succ_begin_;            // per message
  std::vector<std::size_t> succ_causal_begin_;     // per message
  long long edges_ = 0;
  long long causal_edges_ = 0;

  // Built on demand under call_once: [0] = general chains, [1] = causal.
  mutable ZReachTable zreach_[2];
  mutable std::once_flag zreach_once_[2];
};

}  // namespace rdt
