// One-call facade over the characterization hierarchy: runs every checker
// on a pattern and reports the results side by side. This is what the
// examples, the integration tests and experiment E7 consume.
#pragma once

#include <iosfwd>
#include <string>

#include "core/characterizations.hpp"

namespace rdt {

struct RdtReport {
  CheckResult definitional;   // Definition 3.4 via R-graph + TDV
  CheckResult cm;             // all CM-paths doubled       (<=> RDT)
  CheckResult pcm;            // all prime CM-paths doubled (<=> RDT)
  CheckResult mm;             // all MM-paths doubled       (<=> RDT, Wang)
  CheckResult vcm;            // all CM-paths visibly doubled  (sufficient)
  CheckResult vpcm;           // all prime CM-paths visibly doubled (<=> VCM)
  CheckResult no_z_cycle;     // no zigzag cycles            (necessary)

  // The ground truth the others are measured against.
  bool satisfies_rdt() const { return definitional.ok; }

  // Human-readable multi-line summary.
  std::string summary() const;
};

std::ostream& operator<<(std::ostream& os, const RdtReport& report);

// Runs all checkers. Cost: O(C^2) closure plus junction scans, where C is
// the total checkpoint count — intended for analysis/validation, not for
// the inner loop of a simulation. The five junction-based families run as
// one fused pass (check_junction_families).
RdtReport analyze_rdt(const Pattern& pattern);
// Same on analyses the caller already built (and can keep reusing).
RdtReport analyze_rdt(const RdtAnalyses& analyses);

// Just the definitional check (cheapest path to a yes/no answer; never
// builds the chain analysis).
bool satisfies_rdt(const Pattern& pattern);
bool satisfies_rdt(const RdtAnalyses& analyses);

}  // namespace rdt
