#include "core/chains.hpp"

#include <algorithm>
#include <chrono>

#include "util/check.hpp"

namespace rdt {

ChainAnalysis::ChainAnalysis(const Pattern& pattern) : pattern_(&pattern) {
  const auto nodes = static_cast<std::size_t>(pattern.total_ckpts());
  const auto msgs = static_cast<std::size_t>(pattern.num_messages());
  const auto n = static_cast<std::size_t>(pattern.num_processes());
  causal_starts_.assign(msgs, BitVector(nodes));
  simple_causal_starts_.assign(msgs, BitVector(nodes));

  // Sweep the computation once in a causality-consistent order. Per process
  // we keep
  //  * acc_causal — the union of causal_starts over every message delivered
  //    so far (any such delivery may precede a later send, forming a causal
  //    junction);
  //  * acc_simple — the same union restricted to the current interval's
  //    deliveries (simple junctions must not cross a checkpoint);
  //  * open_sends — sends of the current interval, each of which forms a
  //    non-causal junction with every later delivery in the interval.
  std::vector<BitVector> acc_causal(n, BitVector(nodes));
  std::vector<BitVector> acc_simple(n, BitVector(nodes));
  std::vector<std::vector<MsgId>> open_sends(n);

  for (const EventRef& e : pattern.topological_order()) {
    const auto p = static_cast<std::size_t>(e.process);
    const Event& ev = pattern.event(e);
    switch (ev.kind) {
      case EventKind::kSend: {
        const Message& m = pattern.message(ev.msg);
        const auto self = static_cast<std::size_t>(
            pattern.node_id({m.sender, m.send_interval}));
        auto& cs = causal_starts_[static_cast<std::size_t>(ev.msg)];
        cs = acc_causal[p];
        cs.set(self);
        auto& ss = simple_causal_starts_[static_cast<std::size_t>(ev.msg)];
        ss = acc_simple[p];
        ss.set(self);
        open_sends[p].push_back(ev.msg);
        break;
      }
      case EventKind::kDeliver: {
        for (MsgId out : open_sends[p])
          noncausal_.push_back({ev.msg, out, e.process});
        acc_causal[p].merge(causal_starts_[static_cast<std::size_t>(ev.msg)]);
        acc_simple[p].merge(
            simple_causal_starts_[static_cast<std::size_t>(ev.msg)]);
        break;
      }
      case EventKind::kCheckpoint:
        acc_simple[p].reset();
        open_sends[p].clear();
        break;
      case EventKind::kInternal:
        break;
    }
  }

  // Per-process maxima of the start bitsets (O(1) doubling queries later).
  max_causal_start_.assign(msgs * n, 0);
  max_simple_start_.assign(msgs * n, 0);
  const auto collect = [&](const BitVector& bits, CkptIndex* out) {
    for (std::size_t node = bits.find_next(0); node < bits.size();
         node = bits.find_next(node + 1)) {
      const CkptId c = pattern.node_ckpt(static_cast<int>(node));
      CkptIndex& slot = out[static_cast<std::size_t>(c.process)];
      slot = std::max(slot, c.index);
    }
  };
  for (std::size_t m = 0; m < msgs; ++m) {
    collect(causal_starts_[m], &max_causal_start_[m * n]);
    collect(simple_causal_starts_[m], &max_simple_start_[m * n]);
  }

  // The junction-graph CSR. Messages carry increasing send positions per
  // sender (PatternBuilder appends events in order), so iterating by id
  // yields position-sorted per-process send lists for free.
  sends_by_proc_.resize(n);
  for (const Message& m : pattern.messages())
    sends_by_proc_[static_cast<std::size_t>(m.sender)].push_back(m.id);

  // Successor ranges. Every junction successor of m is a send of its
  // receiver r: non-causal ones are the sends of interval deliver_interval(m)
  // before the delivery, causal ones every send after it. Sends before the
  // delivery lie in intervals <= deliver_interval(m), so both sets together
  // form the contiguous suffix starting at r's first send of that interval.
  succ_begin_.assign(msgs, 0);
  succ_causal_begin_.assign(msgs, 0);
  for (const Message& m : pattern.messages()) {
    const auto& sends = sends_by_proc_[static_cast<std::size_t>(m.receiver)];
    const auto interval_lo = std::partition_point(
        sends.begin(), sends.end(), [&](MsgId s) {
          return pattern.message(s).send_interval < m.deliver_interval;
        });
    const auto after_delivery = std::partition_point(
        interval_lo, sends.end(), [&](MsgId s) {
          return pattern.message(s).send_pos < m.deliver_pos;
        });
    const auto id = static_cast<std::size_t>(m.id);
    succ_begin_[id] =
        static_cast<std::size_t>(interval_lo - sends.begin());
    succ_causal_begin_[id] =
        static_cast<std::size_t>(after_delivery - sends.begin());
    edges_ += static_cast<long long>(sends.size() - succ_begin_[id]);
    causal_edges_ +=
        static_cast<long long>(sends.size() - succ_causal_begin_[id]);
  }

  if constexpr (kAuditsEnabled) {
    // Every recorded non-causal junction must satisfy its own definition.
    for (const NonCausalJunction& j : noncausal_) {
      RDT_AUDIT(noncausal_junction(j.incoming, j.outgoing),
                "recorded non-causal junction violates Definition 3.1");
      RDT_AUDIT(pattern.message(j.incoming).receiver == j.at,
                "non-causal junction recorded at the wrong process");
    }
  }
}

bool ChainAnalysis::junction(MsgId a, MsgId b) const {
  return causal_junction(a, b) || noncausal_junction(a, b);
}

bool ChainAnalysis::causal_junction(MsgId a, MsgId b) const {
  const Message& ma = pattern_->message(a);
  const Message& mb = pattern_->message(b);
  return ma.receiver == mb.sender && ma.deliver_pos < mb.send_pos;
}

bool ChainAnalysis::noncausal_junction(MsgId a, MsgId b) const {
  const Message& ma = pattern_->message(a);
  const Message& mb = pattern_->message(b);
  return ma.receiver == mb.sender && mb.send_pos < ma.deliver_pos &&
         ma.deliver_interval == mb.send_interval;
}

const BitVector& ChainAnalysis::causal_starts(MsgId m) const {
  RDT_REQUIRE(m >= 0 && m < pattern_->num_messages(), "message id out of range");
  return causal_starts_[static_cast<std::size_t>(m)];
}

const BitVector& ChainAnalysis::simple_causal_starts(MsgId m) const {
  RDT_REQUIRE(m >= 0 && m < pattern_->num_messages(), "message id out of range");
  return simple_causal_starts_[static_cast<std::size_t>(m)];
}

bool ChainAnalysis::causal_start_at_or_after(MsgId m, ProcessId k,
                                             CkptIndex z) const {
  return max_causal_start(m, k) >= std::max<CkptIndex>(z, 1);
}

bool ChainAnalysis::simple_causal_start_at_or_after(MsgId m, ProcessId k,
                                                    CkptIndex z) const {
  RDT_REQUIRE(m >= 0 && m < pattern_->num_messages(), "message id out of range");
  RDT_REQUIRE(k >= 0 && k < pattern_->num_processes(), "process id out of range");
  const auto n = static_cast<std::size_t>(pattern_->num_processes());
  return max_simple_start_[static_cast<std::size_t>(m) * n +
                           static_cast<std::size_t>(k)] >=
         std::max<CkptIndex>(z, 1);
}

CkptIndex ChainAnalysis::max_causal_start(MsgId m, ProcessId k) const {
  RDT_REQUIRE(m >= 0 && m < pattern_->num_messages(), "message id out of range");
  RDT_REQUIRE(k >= 0 && k < pattern_->num_processes(), "process id out of range");
  const auto n = static_cast<std::size_t>(pattern_->num_processes());
  return max_causal_start_[static_cast<std::size_t>(m) * n +
                           static_cast<std::size_t>(k)];
}

std::pair<std::size_t, std::size_t> ChainAnalysis::succ_range(
    MsgId m, bool causal_only) const {
  const auto id = static_cast<std::size_t>(m);
  const auto& sends = sends_by_proc_[static_cast<std::size_t>(
      pattern_->message(m).receiver)];
  return {causal_only ? succ_causal_begin_[id] : succ_begin_[id], sends.size()};
}

void ChainAnalysis::build_zreach(bool causal_only) const {
  const auto t0 = std::chrono::steady_clock::now();
  const int msgs = pattern_->num_messages();
  ZReachTable& table = zreach_[causal_only ? 1 : 0];
  table.comp.assign(static_cast<std::size_t>(msgs), -1);

  // Iterative Tarjan over the implicit CSR. Condensation node ids are
  // assigned in completion order, i.e. reverse-topologically: every
  // successor component of a component c has an id < c.
  struct Frame {
    MsgId v;
    std::size_t next;
    std::size_t end;
  };
  std::vector<int> index(static_cast<std::size_t>(msgs), -1);
  std::vector<int> low(static_cast<std::size_t>(msgs), 0);
  std::vector<char> on_stack(static_cast<std::size_t>(msgs), 0);
  std::vector<MsgId> stack;
  std::vector<Frame> dfs;
  int next_index = 0;
  int num_comps = 0;

  const auto push_node = [&](MsgId v) {
    index[static_cast<std::size_t>(v)] = low[static_cast<std::size_t>(v)] =
        next_index++;
    stack.push_back(v);
    on_stack[static_cast<std::size_t>(v)] = 1;
    const auto [begin, end] = succ_range(v, causal_only);
    dfs.push_back({v, begin, end});
  };

  for (MsgId root = 0; root < msgs; ++root) {
    if (index[static_cast<std::size_t>(root)] != -1) continue;
    push_node(root);
    while (!dfs.empty()) {
      Frame& f = dfs.back();
      if (f.next < f.end) {
        const MsgId w = sends_by_proc_[static_cast<std::size_t>(
            pattern_->message(f.v).receiver)][f.next++];
        if (index[static_cast<std::size_t>(w)] == -1) {
          push_node(w);
        } else if (on_stack[static_cast<std::size_t>(w)]) {
          low[static_cast<std::size_t>(f.v)] =
              std::min(low[static_cast<std::size_t>(f.v)],
                       index[static_cast<std::size_t>(w)]);
        }
        continue;
      }
      const MsgId v = f.v;
      if (low[static_cast<std::size_t>(v)] ==
          index[static_cast<std::size_t>(v)]) {
        MsgId member;
        do {
          member = stack.back();
          stack.pop_back();
          on_stack[static_cast<std::size_t>(member)] = 0;
          table.comp[static_cast<std::size_t>(member)] = num_comps;
        } while (member != v);
        ++num_comps;
      }
      dfs.pop_back();
      if (!dfs.empty())
        low[static_cast<std::size_t>(dfs.back().v)] =
            std::min(low[static_cast<std::size_t>(dfs.back().v)],
                     low[static_cast<std::size_t>(v)]);
    }
  }

  // One reverse-topological word-parallel sweep: a component reaches its
  // members' own delivery intervals plus everything its successor
  // components reach — and those rows are already final.
  std::vector<std::vector<MsgId>> members(static_cast<std::size_t>(num_comps));
  for (MsgId m = 0; m < msgs; ++m)
    members[static_cast<std::size_t>(table.comp[static_cast<std::size_t>(m)])]
        .push_back(m);
  table.rows.assign(static_cast<std::size_t>(num_comps),
                    BitVector(static_cast<std::size_t>(pattern_->total_ckpts())));
  int largest = 0;
  for (int c = 0; c < num_comps; ++c) {
    BitVector& row = table.rows[static_cast<std::size_t>(c)];
    const auto& group = members[static_cast<std::size_t>(c)];
    largest = std::max(largest, static_cast<int>(group.size()));
    for (MsgId m : group) {
      const Message& msg = pattern_->message(m);
      row.set(static_cast<std::size_t>(
          pattern_->node_id({msg.receiver, msg.deliver_interval})));
      const auto& sends =
          sends_by_proc_[static_cast<std::size_t>(msg.receiver)];
      const auto [begin, end] = succ_range(m, causal_only);
      for (std::size_t i = begin; i < end; ++i) {
        const int sc = table.comp[static_cast<std::size_t>(sends[i])];
        if (sc != c) row.merge(table.rows[static_cast<std::size_t>(sc)]);
      }
    }
  }
  table.largest_scc = largest;
  table.sweep_ms =
      std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
          std::chrono::steady_clock::now() - t0)
          .count();

  if constexpr (kAuditsEnabled) {
    // Cross-validate the condensed reachability table against find_chain's
    // independent BFS over the CSR adjacency, for every interval pair. The
    // table is read directly (not through zreach(), whose call_once we are
    // inside). Bounded to small patterns: the sweep is quadratic in the
    // checkpoint count.
    if (pattern_->total_ckpts() <= 64 && msgs <= 256) {
      const auto table_says = [&](const IntervalId& from, const IntervalId& to) {
        const auto target =
            static_cast<std::size_t>(pattern_->node_id({to.process, to.index}));
        const auto& sends =
            sends_by_proc_[static_cast<std::size_t>(from.process)];
        const auto lo = std::partition_point(
            sends.begin(), sends.end(), [&](MsgId s) {
              return pattern_->message(s).send_interval < from.index;
            });
        for (auto it = lo; it != sends.end() &&
                           pattern_->message(*it).send_interval == from.index;
             ++it)
          if (table.rows[static_cast<std::size_t>(
                             table.comp[static_cast<std::size_t>(*it)])]
                  .get(target))
            return true;
        return false;
      };
      for (ProcessId k = 0; k < pattern_->num_processes(); ++k)
        for (CkptIndex z = 1; z <= pattern_->last_ckpt(k); ++z)
          for (ProcessId j = 0; j < pattern_->num_processes(); ++j)
            for (CkptIndex y = 1; y <= pattern_->last_ckpt(j); ++y) {
              const IntervalId from{k, z};
              const IntervalId to{j, y};
              RDT_AUDIT(table_says(from, to) ==
                            find_chain(from, to, causal_only).has_value(),
                        "SCC-condensed Z-path reachability disagrees with the "
                        "BFS witness search");
            }
    }
  }
}

const ChainAnalysis::ZReachTable& ChainAnalysis::zreach(bool causal_only) const {
  std::call_once(zreach_once_[causal_only ? 1 : 0],
                 [&] { build_zreach(causal_only); });
  return zreach_[causal_only ? 1 : 0];
}

ChainAnalysis::ZReachStats ChainAnalysis::zreach_stats() const {
  const ZReachTable& table = zreach(/*causal_only=*/false);
  ZReachStats stats;
  stats.edges = edges_;
  stats.causal_edges = causal_edges_;
  stats.sccs = static_cast<int>(table.rows.size());
  stats.largest_scc = table.largest_scc;
  stats.sweep_ms = table.sweep_ms;
  return stats;
}

std::optional<std::vector<MsgId>> ChainAnalysis::find_chain(
    const IntervalId& from, const IntervalId& to, bool causal_only) const {
  RDT_REQUIRE(from.index >= 1 && from.index <= pattern_->last_ckpt(from.process),
              "source interval out of range");
  RDT_REQUIRE(to.index >= 1 && to.index <= pattern_->last_ckpt(to.process),
              "target interval out of range");

  // BFS over the junction-graph CSR; a message is a goal when its delivery
  // lands exactly in the target interval. Because each node's successors are
  // a suffix of its receiver's send list, a per-process skip structure
  // (pointer jumping over already-enqueued sends) makes the whole search
  // near-linear instead of O(M) per dequeued message.
  const auto msgs = static_cast<std::size_t>(pattern_->num_messages());
  std::vector<MsgId> parent(msgs, kNoMsg);
  std::vector<char> visited(msgs, 0);
  std::vector<std::vector<std::size_t>> skip(sends_by_proc_.size());
  for (std::size_t p = 0; p < skip.size(); ++p) {
    skip[p].resize(sends_by_proc_[p].size() + 1);
    for (std::size_t i = 0; i < skip[p].size(); ++i) skip[p][i] = i;
  }
  // Smallest index >= i whose send is not yet enqueued (with path
  // compression); enqueueing send i sets skip[i] = i + 1.
  const auto next_unvisited = [](std::vector<std::size_t>& sk, std::size_t i) {
    std::size_t root = i;
    while (sk[root] != root) root = sk[root];
    while (sk[i] != root) {
      const std::size_t up = sk[i];
      sk[i] = root;
      i = up;
    }
    return root;
  };

  std::vector<MsgId> queue;
  {
    const auto p = static_cast<std::size_t>(from.process);
    const auto& sends = sends_by_proc_[p];
    const auto lo = std::partition_point(
        sends.begin(), sends.end(), [&](MsgId s) {
          return pattern_->message(s).send_interval < from.index;
        });
    const auto hi = std::partition_point(lo, sends.end(), [&](MsgId s) {
      return pattern_->message(s).send_interval == from.index;
    });
    for (auto it = lo; it != hi; ++it) {
      const auto id = static_cast<std::size_t>(*it);
      visited[id] = 1;
      skip[p][static_cast<std::size_t>(it - sends.begin())] =
          static_cast<std::size_t>(it - sends.begin()) + 1;
      queue.push_back(*it);
    }
  }

  for (std::size_t head = 0; head < queue.size(); ++head) {
    const MsgId cur = queue[head];
    const Message& mc = pattern_->message(cur);
    if (mc.receiver == to.process && mc.deliver_interval == to.index) {
      std::vector<MsgId> chain;
      for (MsgId m = cur; m != kNoMsg; m = parent[static_cast<std::size_t>(m)])
        chain.push_back(m);
      std::reverse(chain.begin(), chain.end());
      return chain;
    }
    const auto r = static_cast<std::size_t>(mc.receiver);
    const auto& sends = sends_by_proc_[r];
    const auto [begin, end] = succ_range(cur, causal_only);
    for (std::size_t i = next_unvisited(skip[r], begin); i < end;
         i = next_unvisited(skip[r], i + 1)) {
      const MsgId next = sends[i];
      visited[static_cast<std::size_t>(next)] = 1;
      skip[r][i] = i + 1;
      parent[static_cast<std::size_t>(next)] = cur;
      queue.push_back(next);
    }
  }
  return std::nullopt;
}

bool ChainAnalysis::zpath_between_intervals(const IntervalId& from,
                                            const IntervalId& to,
                                            bool causal_only) const {
  RDT_REQUIRE(from.index >= 1 && from.index <= pattern_->last_ckpt(from.process),
              "source interval out of range");
  RDT_REQUIRE(to.index >= 1 && to.index <= pattern_->last_ckpt(to.process),
              "target interval out of range");
  const ZReachTable& table = zreach(causal_only);
  const auto target =
      static_cast<std::size_t>(pattern_->node_id({to.process, to.index}));
  const auto& sends =
      sends_by_proc_[static_cast<std::size_t>(from.process)];
  const auto lo = std::partition_point(
      sends.begin(), sends.end(), [&](MsgId s) {
        return pattern_->message(s).send_interval < from.index;
      });
  for (auto it = lo; it != sends.end() &&
                     pattern_->message(*it).send_interval == from.index;
       ++it)
    if (table.rows[static_cast<std::size_t>(
                       table.comp[static_cast<std::size_t>(*it)])]
            .get(target))
      return true;
  return false;
}

}  // namespace rdt
