#include "core/chains.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace rdt {

ChainAnalysis::ChainAnalysis(const Pattern& pattern) : pattern_(&pattern) {
  const auto nodes = static_cast<std::size_t>(pattern.total_ckpts());
  const auto msgs = static_cast<std::size_t>(pattern.num_messages());
  causal_starts_.assign(msgs, BitVector(nodes));
  simple_causal_starts_.assign(msgs, BitVector(nodes));

  // Sweep the computation once in a causality-consistent order. Per process
  // we keep
  //  * acc_causal — the union of causal_starts over every message delivered
  //    so far (any such delivery may precede a later send, forming a causal
  //    junction);
  //  * acc_simple — the same union restricted to the current interval's
  //    deliveries (simple junctions must not cross a checkpoint);
  //  * open_sends — sends of the current interval, each of which forms a
  //    non-causal junction with every later delivery in the interval.
  const auto n = static_cast<std::size_t>(pattern.num_processes());
  std::vector<BitVector> acc_causal(n, BitVector(nodes));
  std::vector<BitVector> acc_simple(n, BitVector(nodes));
  std::vector<std::vector<MsgId>> open_sends(n);

  for (const EventRef& e : pattern.topological_order()) {
    const auto p = static_cast<std::size_t>(e.process);
    const Event& ev = pattern.event(e);
    switch (ev.kind) {
      case EventKind::kSend: {
        const Message& m = pattern.message(ev.msg);
        const auto self = static_cast<std::size_t>(
            pattern.node_id({m.sender, m.send_interval}));
        auto& cs = causal_starts_[static_cast<std::size_t>(ev.msg)];
        cs = acc_causal[p];
        cs.set(self);
        auto& ss = simple_causal_starts_[static_cast<std::size_t>(ev.msg)];
        ss = acc_simple[p];
        ss.set(self);
        open_sends[p].push_back(ev.msg);
        break;
      }
      case EventKind::kDeliver: {
        for (MsgId out : open_sends[p])
          noncausal_.push_back({ev.msg, out, e.process});
        acc_causal[p].or_with(causal_starts_[static_cast<std::size_t>(ev.msg)]);
        acc_simple[p].or_with(
            simple_causal_starts_[static_cast<std::size_t>(ev.msg)]);
        break;
      }
      case EventKind::kCheckpoint:
        acc_simple[p].reset();
        open_sends[p].clear();
        break;
      case EventKind::kInternal:
        break;
    }
  }
}

bool ChainAnalysis::junction(MsgId a, MsgId b) const {
  return causal_junction(a, b) || noncausal_junction(a, b);
}

bool ChainAnalysis::causal_junction(MsgId a, MsgId b) const {
  const Message& ma = pattern_->message(a);
  const Message& mb = pattern_->message(b);
  return ma.receiver == mb.sender && ma.deliver_pos < mb.send_pos;
}

bool ChainAnalysis::noncausal_junction(MsgId a, MsgId b) const {
  const Message& ma = pattern_->message(a);
  const Message& mb = pattern_->message(b);
  return ma.receiver == mb.sender && mb.send_pos < ma.deliver_pos &&
         ma.deliver_interval == mb.send_interval;
}

const BitVector& ChainAnalysis::causal_starts(MsgId m) const {
  RDT_REQUIRE(m >= 0 && m < pattern_->num_messages(), "message id out of range");
  return causal_starts_[static_cast<std::size_t>(m)];
}

const BitVector& ChainAnalysis::simple_causal_starts(MsgId m) const {
  RDT_REQUIRE(m >= 0 && m < pattern_->num_messages(), "message id out of range");
  return simple_causal_starts_[static_cast<std::size_t>(m)];
}

namespace {

// Highest checkpoint index z in [z_min, last] of process k whose bit is set;
// 0 if none. Node ids of a process are contiguous and ordered by index.
CkptIndex max_start_in(const BitVector& bits, const Pattern& p, ProcessId k,
                       CkptIndex z_min) {
  CkptIndex best = 0;
  const CkptIndex lo = std::max<CkptIndex>(z_min, 1);
  if (lo > p.last_ckpt(k)) return 0;
  auto pos = static_cast<std::size_t>(p.node_id({k, lo}));
  const auto end = static_cast<std::size_t>(p.node_id({k, p.last_ckpt(k)}));
  for (pos = bits.find_next(pos); pos <= end && pos < bits.size();
       pos = bits.find_next(pos + 1))
    best = p.node_ckpt(static_cast<int>(pos)).index;
  return best;
}

}  // namespace

bool ChainAnalysis::causal_start_at_or_after(MsgId m, ProcessId k,
                                             CkptIndex z) const {
  return max_start_in(causal_starts(m), *pattern_, k, z) >= std::max<CkptIndex>(z, 1);
}

bool ChainAnalysis::simple_causal_start_at_or_after(MsgId m, ProcessId k,
                                                    CkptIndex z) const {
  return max_start_in(simple_causal_starts(m), *pattern_, k, z) >=
         std::max<CkptIndex>(z, 1);
}

CkptIndex ChainAnalysis::max_causal_start(MsgId m, ProcessId k) const {
  return max_start_in(causal_starts(m), *pattern_, k, 1);
}

void ChainAnalysis::ensure_zreach(bool causal_only) const {
  auto& table = causal_only ? causal_z_ends_ : z_ends_;
  auto& ready = causal_only ? causal_z_ends_ready_ : z_ends_ready_;
  if (ready) return;

  const auto msgs = static_cast<std::size_t>(pattern_->num_messages());
  const auto nodes = static_cast<std::size_t>(pattern_->total_ckpts());
  table.assign(msgs, BitVector(nodes));
  for (const Message& m : pattern_->messages())
    table[static_cast<std::size_t>(m.id)].set(static_cast<std::size_t>(
        pattern_->node_id({m.receiver, m.deliver_interval})));

  // The junction graph may contain cycles (zigzag cycles), so iterate to a
  // fixpoint rather than a one-pass DP.
  std::vector<std::pair<MsgId, MsgId>> edges;
  for (MsgId a = 0; a < pattern_->num_messages(); ++a)
    for (MsgId b = 0; b < pattern_->num_messages(); ++b) {
      if (a == b) continue;
      if (causal_only ? causal_junction(a, b) : junction(a, b))
        edges.emplace_back(a, b);
    }
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& [a, b] : edges)
      changed |= table[static_cast<std::size_t>(a)].or_with(
          table[static_cast<std::size_t>(b)]);
  }
  ready = true;
}

std::optional<std::vector<MsgId>> ChainAnalysis::find_chain(
    const IntervalId& from, const IntervalId& to, bool causal_only) const {
  RDT_REQUIRE(from.index >= 1 && from.index <= pattern_->last_ckpt(from.process),
              "source interval out of range");
  RDT_REQUIRE(to.index >= 1 && to.index <= pattern_->last_ckpt(to.process),
              "target interval out of range");

  // BFS over messages; a message is a goal when its delivery lands exactly
  // in the target interval.
  std::vector<MsgId> parent(static_cast<std::size_t>(pattern_->num_messages()),
                            kNoMsg - 1);  // sentinel: unvisited
  std::vector<MsgId> queue;
  for (const Message& m : pattern_->messages())
    if (m.sender == from.process && m.send_interval == from.index) {
      parent[static_cast<std::size_t>(m.id)] = kNoMsg;  // root
      queue.push_back(m.id);
    }
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const MsgId cur = queue[head];
    const Message& mc = pattern_->message(cur);
    if (mc.receiver == to.process && mc.deliver_interval == to.index) {
      std::vector<MsgId> chain;
      for (MsgId m = cur; m != kNoMsg; m = parent[static_cast<std::size_t>(m)])
        chain.push_back(m);
      std::reverse(chain.begin(), chain.end());
      return chain;
    }
    for (MsgId next = 0; next < pattern_->num_messages(); ++next) {
      if (parent[static_cast<std::size_t>(next)] != kNoMsg - 1) continue;
      const bool ok =
          causal_only ? causal_junction(cur, next) : junction(cur, next);
      if (ok) {
        parent[static_cast<std::size_t>(next)] = cur;
        queue.push_back(next);
      }
    }
  }
  return std::nullopt;
}

bool ChainAnalysis::zpath_between_intervals(const IntervalId& from,
                                            const IntervalId& to,
                                            bool causal_only) const {
  RDT_REQUIRE(from.index >= 1 && from.index <= pattern_->last_ckpt(from.process),
              "source interval out of range");
  RDT_REQUIRE(to.index >= 1 && to.index <= pattern_->last_ckpt(to.process),
              "target interval out of range");
  ensure_zreach(causal_only);
  const auto& table = causal_only ? causal_z_ends_ : z_ends_;
  const auto target =
      static_cast<std::size_t>(pattern_->node_id({to.process, to.index}));
  for (const Message& m : pattern_->messages())
    if (m.sender == from.process && m.send_interval == from.index &&
        table[static_cast<std::size_t>(m.id)].get(target))
      return true;
  return false;
}

}  // namespace rdt
