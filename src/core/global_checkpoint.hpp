// Minimum / maximum consistent global checkpoints.
//
// The consistent global checkpoints of a pattern form a lattice under the
// componentwise order, so "the minimum consistent global checkpoint >= a
// bound" and its dual are well defined. Both are computed by monotone
// fixpoints over orphan messages:
//  * minimum:  an orphan (send not included, delivery included) is repaired
//    by raising the *sender's* component to cover the send;
//  * maximum:  by lowering the *receiver's* component below the delivery.
//
// The "containing" variants pin selected local checkpoints exactly and fail
// (nullopt) when no consistent global checkpoint contains them — which, by
// Netzer–Xu, happens precisely when a zigzag path connects two pinned
// checkpoints (or one to itself).
//
// Corollary 4.5 of the paper: under RDT, min_consistent_containing({C_{i,x}})
// equals the TDV saved at C_{i,x} — the protocols hand this out on the fly;
// the functions here are the offline reference implementations used to
// validate that claim (experiment E6).
#pragma once

#include <optional>
#include <span>

#include "ccp/consistency.hpp"
#include "ccp/pattern.hpp"

namespace rdt {

// The all-initial and all-final global checkpoints (both always consistent).
GlobalCkpt bottom_global_ckpt(const Pattern& p);
GlobalCkpt top_global_ckpt(const Pattern& p);

// Least consistent global checkpoint g with g >= lower (componentwise).
// Always exists because the top is consistent.
GlobalCkpt min_consistent_geq(const Pattern& p, const GlobalCkpt& lower);

// Greatest consistent global checkpoint g with g <= upper.
GlobalCkpt max_consistent_leq(const Pattern& p, const GlobalCkpt& upper);

// Least / greatest consistent global checkpoint whose pinned components
// equal the given checkpoints exactly; nullopt if none exists. `pins` may
// name at most one checkpoint per process.
std::optional<GlobalCkpt> min_consistent_containing(const Pattern& p,
                                                    std::span<const CkptId> pins);
std::optional<GlobalCkpt> max_consistent_containing(const Pattern& p,
                                                    std::span<const CkptId> pins);

// Exhaustive reference implementation (exponential; guarded to small
// patterns) used by tests to validate the fixpoints.
std::optional<GlobalCkpt> brute_force_min_consistent_containing(
    const Pattern& p, std::span<const CkptId> pins);

}  // namespace rdt
