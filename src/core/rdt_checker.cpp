#include "core/rdt_checker.hpp"

#include <ostream>
#include <sstream>

namespace rdt {

RdtReport analyze_rdt(const RdtAnalyses& analyses) {
  RdtReport report;
  report.definitional = check_rdt_definitional(analyses);
  const JunctionReport junctions = check_junction_families(analyses);
  report.cm = junctions.cm;
  report.pcm = junctions.pcm;
  report.mm = junctions.mm;
  report.vcm = junctions.vcm;
  report.vpcm = junctions.vpcm;
  report.no_z_cycle = check_no_z_cycle(analyses);
  return report;
}

RdtReport analyze_rdt(const Pattern& pattern) {
  const RdtAnalyses analyses(pattern);
  return analyze_rdt(analyses);
}

bool satisfies_rdt(const RdtAnalyses& analyses) {
  return check_rdt_definitional(analyses).ok;
}

bool satisfies_rdt(const Pattern& pattern) {
  const RdtAnalyses analyses(pattern);
  return satisfies_rdt(analyses);
}

namespace {

void line(std::ostringstream& os, const char* name, const CheckResult& r) {
  os << "  " << name << ": " << (r.ok ? "holds" : "VIOLATED") << " ("
     << r.paths_satisfied << '/' << r.paths_checked << " paths)";
  if (!r.ok && r.witness) os << "  first: " << r.witness->describe();
  os << '\n';
}

}  // namespace

std::string RdtReport::summary() const {
  std::ostringstream os;
  os << "RDT analysis — pattern " << (satisfies_rdt() ? "SATISFIES" : "violates")
     << " rollback-dependency trackability\n";
  line(os, "definitional (all R-paths trackable)", definitional);
  line(os, "CM-paths doubled                    ", cm);
  line(os, "prime CM-paths doubled              ", pcm);
  line(os, "MM-paths doubled                    ", mm);
  line(os, "CM-paths visibly doubled            ", vcm);
  line(os, "prime CM-paths visibly doubled      ", vpcm);
  line(os, "no zigzag cycle                     ", no_z_cycle);
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const RdtReport& report) {
  return os << report.summary();
}

}  // namespace rdt
