#include "core/rdt_checker.hpp"

#include <ostream>
#include <sstream>

namespace rdt {

RdtReport analyze_rdt(const Pattern& pattern) {
  const RdtAnalyses analyses(pattern);
  RdtReport report;
  report.definitional = check_rdt_definitional(analyses);
  report.cm = check_cm_doubled(analyses);
  report.pcm = check_pcm_doubled(analyses);
  report.mm = check_mm_doubled(analyses);
  report.vcm = check_cm_visibly_doubled(analyses);
  report.vpcm = check_pcm_visibly_doubled(analyses);
  report.no_z_cycle = check_no_z_cycle(analyses);
  return report;
}

bool satisfies_rdt(const Pattern& pattern) {
  const RdtAnalyses analyses(pattern);
  return check_rdt_definitional(analyses).ok;
}

namespace {

void line(std::ostringstream& os, const char* name, const CheckResult& r) {
  os << "  " << name << ": " << (r.ok ? "holds" : "VIOLATED") << " ("
     << r.paths_satisfied << '/' << r.paths_checked << " paths)";
  if (!r.ok && r.witness) os << "  first: " << r.witness->describe();
  os << '\n';
}

}  // namespace

std::string RdtReport::summary() const {
  std::ostringstream os;
  os << "RDT analysis — pattern " << (satisfies_rdt() ? "SATISFIES" : "violates")
     << " rollback-dependency trackability\n";
  line(os, "definitional (all R-paths trackable)", definitional);
  line(os, "CM-paths doubled                    ", cm);
  line(os, "prime CM-paths doubled              ", pcm);
  line(os, "MM-paths doubled                    ", mm);
  line(os, "CM-paths visibly doubled            ", vcm);
  line(os, "prime CM-paths visibly doubled      ", vpcm);
  line(os, "no zigzag cycle                     ", no_z_cycle);
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const RdtReport& report) {
  return os << report.summary();
}

}  // namespace rdt
