// Descriptive statistics of a checkpoint-and-communication pattern — the
// quantities the checkpointing literature uses to characterize workloads
// (junction densities, hidden dependencies, useless checkpoints) gathered
// in one pass for reports, experiments and the CLI.
#pragma once

#include <iosfwd>

#include "ccp/pattern.hpp"
#include "core/characterizations.hpp"

namespace rdt {

struct PatternStats {
  int processes = 0;
  int messages = 0;
  int events = 0;
  int checkpoints = 0;          // including initial and virtual finals
  int virtual_finals = 0;

  // Junctions: ordered message pairs that can appear consecutively in a
  // chain at some process (Definition 3.1).
  long long causal_junctions = 0;
  long long noncausal_junctions = 0;

  // Checkpoint pairs (a, b) connected by a message chain (msg_reach) but
  // not on-line trackable — the hidden dependencies RDT rules out.
  long long hidden_dependencies = 0;
  // Checkpoints on a zigzag cycle.
  int useless_checkpoints = 0;

  // Shape of the z-reach engine's junction graph: edge count (equals
  // causal_junctions + noncausal_junctions), condensation size, and the
  // largest zigzag cycle, plus the SCC + bit-propagation sweep time.
  long long zreach_edges = 0;
  int zreach_sccs = 0;
  int zreach_largest_scc = 0;
  double zreach_sweep_ms = 0.0;

  bool rdt() const { return hidden_dependencies == 0; }
};

// Full computation (includes the R-graph closure: O(C^2) memory, use on
// analysis-sized patterns).
PatternStats compute_stats(const Pattern& pattern);
// Same on analyses the caller already built (and can keep reusing).
PatternStats compute_stats(const RdtAnalyses& analyses);

std::ostream& operator<<(std::ostream& os, const PatternStats& stats);

}  // namespace rdt
