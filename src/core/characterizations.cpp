#include "core/characterizations.hpp"

#include <sstream>
#include <vector>

#include "rgraph/zigzag.hpp"
#include "util/check.hpp"

namespace rdt {

std::string RdtViolation::describe() const {
  std::ostringstream os;
  os << "dependency " << from << " -> " << to << " is not on-line trackable";
  if (junction) {
    os << " (witness: non-causal junction at P" << junction->at << ": m"
       << junction->outgoing << " sent before m" << junction->incoming
       << " was delivered)";
  }
  return os.str();
}

const ChainAnalysis& RdtAnalyses::chains() const {
  std::call_once(chains_once_, [&] { chains_.emplace(*pattern_); });
  return *chains_;
}

const ReachabilityClosure& RdtAnalyses::closure() const {
  std::call_once(closure_once_, [&] {
    rgraph_.emplace(*pattern_);
    closure_.emplace(*rgraph_);
  });
  return *closure_;
}

CheckResult check_rdt_definitional(const RdtAnalyses& a) {
  const Pattern& p = a.pattern();
  const ReachabilityClosure& closure = a.closure();
  CheckResult result;
  for (int u = 0; u < p.total_ckpts(); ++u) {
    const CkptId cu = p.node_ckpt(u);
    const ConstBitSpan row = closure.msg_reach_row(u);
    for (std::size_t v = row.find_next(0); v < row.size();
         v = row.find_next(v + 1)) {
      const CkptId cv = p.node_ckpt(static_cast<int>(v));
      ++result.paths_checked;
      if (a.tdv().trackable(cu, cv)) {
        ++result.paths_satisfied;
      } else if (result.ok) {
        result.ok = false;
        result.witness = RdtViolation{cu, cv, std::nullopt};
      }
    }
  }
  return result;
}

namespace {

enum class Family { kMm, kCm, kPcm };
enum class Doubling { kAny, kVisible };

struct JunctionQuery {
  Family family;
  Doubling mode;
  CheckResult* out;
};

// Shared engine for the junction-based checkers. For every non-causal
// junction (m_c delivered at P_i after m' was sent to P_j in the same
// interval) and every admissible start checkpoint C_{k,z} of the chain
// prefix ending at m_c, the induced path C_{k,z} -> C_{j,y} must be doubled
// (resp. visibly doubled). Evaluating all queries in one sweep lets the
// families share the per-junction start sets and the visible-doubling scan,
// which dominate the cost; each query's counters and first witness are
// exactly what a standalone run would produce.
void run_junction_queries(const RdtAnalyses& a,
                          const std::vector<JunctionQuery>& queries) {
  const Pattern& p = a.pattern();
  const ChainAnalysis& chains = a.chains();
  const TdvAnalysis& tdv = a.tdv();

  bool want_visible = false;
  bool want_cm = false;
  bool want_pcm = false;
  for (const JunctionQuery& q : queries) {
    want_visible |= q.mode == Doubling::kVisible;
    want_cm |= q.family == Family::kCm;
    want_pcm |= q.family == Family::kPcm;
  }

  // Messages delivered to each process, for the visible-doubling scan.
  std::vector<std::vector<MsgId>> delivered_to(
      static_cast<std::size_t>(p.num_processes()));
  if (want_visible)
    for (const Message& m : p.messages())
      delivered_to[static_cast<std::size_t>(m.receiver)].push_back(m.id);

  std::vector<CkptIndex> best_visible;
  std::vector<CkptId> mm_starts;
  std::vector<CkptId> cm_starts;
  std::vector<CkptId> pcm_starts;
  const auto collect_starts = [&p](const BitVector& bits,
                                   std::vector<CkptId>& starts) {
    starts.clear();
    for (std::size_t node = bits.find_next(0); node < bits.size();
         node = bits.find_next(node + 1))
      starts.push_back(p.node_ckpt(static_cast<int>(node)));
  };

  for (const NonCausalJunction& jn : chains.noncausal_junctions()) {
    const Message& mc = p.message(jn.incoming);
    const Message& mp = p.message(jn.outgoing);
    const ProcessId j = mp.receiver;
    const CkptIndex y = mp.deliver_interval;
    const CkptId target{j, y};

    // Visible doublings available at this junction: best_visible[k] is the
    // highest z' such that a causal chain from C_{k,z'} reaches P_j at or
    // before C_{j,y} with its last send in the causal past of the decision
    // point deliver(m_c).
    if (want_visible) {
      best_visible.assign(static_cast<std::size_t>(p.num_processes()), 0);
      for (MsgId cand : delivered_to[static_cast<std::size_t>(j)]) {
        const Message& m2 = p.message(cand);
        if (m2.deliver_interval > y) continue;
        if (!p.happened_before(m2.send_event(), mc.deliver_event())) continue;
        for (ProcessId k = 0; k < p.num_processes(); ++k) {
          const CkptIndex z = chains.max_causal_start(cand, k);
          if (z > best_visible[static_cast<std::size_t>(k)])
            best_visible[static_cast<std::size_t>(k)] = z;
        }
      }
    }

    // Start checkpoints of the admissible chain prefixes, per family.
    mm_starts.assign(1, {mc.sender, mc.send_interval});
    if (want_cm) collect_starts(chains.causal_starts(jn.incoming), cm_starts);
    if (want_pcm)
      collect_starts(chains.simple_causal_starts(jn.incoming), pcm_starts);

    for (const JunctionQuery& q : queries) {
      CheckResult& result = *q.out;
      const std::vector<CkptId>& starts = q.family == Family::kMm ? mm_starts
                                          : q.family == Family::kCm
                                              ? cm_starts
                                              : pcm_starts;
      for (const CkptId& start : starts) {
        ++result.paths_checked;
        bool ok;
        if (q.mode == Doubling::kAny) {
          ok = tdv.trackable(start, target);
        } else if (start.process == j) {
          // Same-process doubling is positional: P_j's own order is visible.
          ok = start.index <= y;
        } else {
          ok = best_visible[static_cast<std::size_t>(start.process)] >=
               start.index;
        }
        if (ok) {
          ++result.paths_satisfied;
        } else if (result.ok) {
          result.ok = false;
          result.witness = RdtViolation{start, target, jn};
        }
      }
    }
  }
}

CheckResult check_junctions(const RdtAnalyses& a, Family family, Doubling mode) {
  CheckResult result;
  run_junction_queries(a, {{family, mode, &result}});
  return result;
}

}  // namespace

CheckResult check_cm_doubled(const RdtAnalyses& a) {
  return check_junctions(a, Family::kCm, Doubling::kAny);
}

CheckResult check_pcm_doubled(const RdtAnalyses& a) {
  return check_junctions(a, Family::kPcm, Doubling::kAny);
}

CheckResult check_mm_doubled(const RdtAnalyses& a) {
  return check_junctions(a, Family::kMm, Doubling::kAny);
}

CheckResult check_cm_visibly_doubled(const RdtAnalyses& a) {
  return check_junctions(a, Family::kCm, Doubling::kVisible);
}

CheckResult check_pcm_visibly_doubled(const RdtAnalyses& a) {
  return check_junctions(a, Family::kPcm, Doubling::kVisible);
}

JunctionReport check_junction_families(const RdtAnalyses& a) {
  JunctionReport report;
  run_junction_queries(a, {{Family::kCm, Doubling::kAny, &report.cm},
                           {Family::kPcm, Doubling::kAny, &report.pcm},
                           {Family::kMm, Doubling::kAny, &report.mm},
                           {Family::kCm, Doubling::kVisible, &report.vcm},
                           {Family::kPcm, Doubling::kVisible, &report.vpcm}});
  return report;
}

CheckResult check_no_z_cycle(const RdtAnalyses& a) {
  const Pattern& p = a.pattern();
  const ReachabilityClosure& closure = a.closure();
  CheckResult result;
  for (int node = 0; node < p.total_ckpts(); ++node) {
    const CkptId c = p.node_ckpt(node);
    ++result.paths_checked;
    if (!on_zigzag_cycle(closure, c)) {
      ++result.paths_satisfied;
    } else if (result.ok) {
      result.ok = false;
      result.witness = RdtViolation{c, c, std::nullopt};
    }
  }
  return result;
}

}  // namespace rdt
