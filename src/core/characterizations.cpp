#include "core/characterizations.hpp"

#include <sstream>
#include <vector>

#include "rgraph/zigzag.hpp"
#include "util/check.hpp"

namespace rdt {

std::string RdtViolation::describe() const {
  std::ostringstream os;
  os << "dependency " << from << " -> " << to << " is not on-line trackable";
  if (junction) {
    os << " (witness: non-causal junction at P" << junction->at << ": m"
       << junction->outgoing << " sent before m" << junction->incoming
       << " was delivered)";
  }
  return os.str();
}

const ReachabilityClosure& RdtAnalyses::closure() const {
  if (!closure_) {
    rgraph_.emplace(*pattern_);
    closure_.emplace(*rgraph_);
  }
  return *closure_;
}

CheckResult check_rdt_definitional(const RdtAnalyses& a) {
  const Pattern& p = a.pattern();
  const ReachabilityClosure& closure = a.closure();
  CheckResult result;
  for (int u = 0; u < p.total_ckpts(); ++u) {
    const CkptId cu = p.node_ckpt(u);
    const BitVector& row = closure.msg_reach_row(u);
    for (std::size_t v = row.find_next(0); v < row.size();
         v = row.find_next(v + 1)) {
      const CkptId cv = p.node_ckpt(static_cast<int>(v));
      ++result.paths_checked;
      if (a.tdv().trackable(cu, cv)) {
        ++result.paths_satisfied;
      } else if (result.ok) {
        result.ok = false;
        result.witness = RdtViolation{cu, cv, std::nullopt};
      }
    }
  }
  return result;
}

namespace {

enum class Family { kMm, kCm, kPcm };
enum class Doubling { kAny, kVisible };

// Shared engine for the junction-based checkers. For every non-causal
// junction (m_c delivered at P_i after m' was sent to P_j in the same
// interval) and every admissible start checkpoint C_{k,z} of the chain
// prefix ending at m_c, the induced path C_{k,z} -> C_{j,y} must be doubled
// (resp. visibly doubled).
CheckResult check_junctions(const RdtAnalyses& a, Family family, Doubling mode) {
  const Pattern& p = a.pattern();
  const ChainAnalysis& chains = a.chains();
  const TdvAnalysis& tdv = a.tdv();
  CheckResult result;

  // Messages delivered to each process, for the visible-doubling scan.
  std::vector<std::vector<MsgId>> delivered_to(
      static_cast<std::size_t>(p.num_processes()));
  if (mode == Doubling::kVisible)
    for (const Message& m : p.messages())
      delivered_to[static_cast<std::size_t>(m.receiver)].push_back(m.id);

  for (const NonCausalJunction& jn : chains.noncausal_junctions()) {
    const Message& mc = p.message(jn.incoming);
    const Message& mp = p.message(jn.outgoing);
    const ProcessId j = mp.receiver;
    const CkptIndex y = mp.deliver_interval;
    const CkptId target{j, y};

    // Visible doublings available at this junction: best_visible[k] is the
    // highest z' such that a causal chain from C_{k,z'} reaches P_j at or
    // before C_{j,y} with its last send in the causal past of the decision
    // point deliver(m_c).
    std::vector<CkptIndex> best_visible;
    if (mode == Doubling::kVisible) {
      best_visible.assign(static_cast<std::size_t>(p.num_processes()), 0);
      for (MsgId cand : delivered_to[static_cast<std::size_t>(j)]) {
        const Message& m2 = p.message(cand);
        if (m2.deliver_interval > y) continue;
        if (!p.happened_before(m2.send_event(), mc.deliver_event())) continue;
        for (ProcessId k = 0; k < p.num_processes(); ++k) {
          const CkptIndex z = chains.max_causal_start(cand, k);
          if (z > best_visible[static_cast<std::size_t>(k)])
            best_visible[static_cast<std::size_t>(k)] = z;
        }
      }
    }

    // Start checkpoints of the admissible chain prefixes.
    std::vector<CkptId> starts;
    if (family == Family::kMm) {
      starts.push_back({mc.sender, mc.send_interval});
    } else {
      const BitVector& bits = family == Family::kPcm
                                  ? chains.simple_causal_starts(jn.incoming)
                                  : chains.causal_starts(jn.incoming);
      for (std::size_t node = bits.find_next(0); node < bits.size();
           node = bits.find_next(node + 1))
        starts.push_back(p.node_ckpt(static_cast<int>(node)));
    }

    for (const CkptId& start : starts) {
      ++result.paths_checked;
      bool ok;
      if (mode == Doubling::kAny) {
        ok = tdv.trackable(start, target);
      } else if (start.process == j) {
        // Same-process doubling is positional: P_j's own order is visible.
        ok = start.index <= y;
      } else {
        ok = best_visible[static_cast<std::size_t>(start.process)] >= start.index;
      }
      if (ok) {
        ++result.paths_satisfied;
      } else if (result.ok) {
        result.ok = false;
        result.witness = RdtViolation{start, target, jn};
      }
    }
  }
  return result;
}

}  // namespace

CheckResult check_cm_doubled(const RdtAnalyses& a) {
  return check_junctions(a, Family::kCm, Doubling::kAny);
}

CheckResult check_pcm_doubled(const RdtAnalyses& a) {
  return check_junctions(a, Family::kPcm, Doubling::kAny);
}

CheckResult check_mm_doubled(const RdtAnalyses& a) {
  return check_junctions(a, Family::kMm, Doubling::kAny);
}

CheckResult check_cm_visibly_doubled(const RdtAnalyses& a) {
  return check_junctions(a, Family::kCm, Doubling::kVisible);
}

CheckResult check_pcm_visibly_doubled(const RdtAnalyses& a) {
  return check_junctions(a, Family::kPcm, Doubling::kVisible);
}

CheckResult check_no_z_cycle(const RdtAnalyses& a) {
  const Pattern& p = a.pattern();
  const ReachabilityClosure& closure = a.closure();
  CheckResult result;
  for (int node = 0; node < p.total_ckpts(); ++node) {
    const CkptId c = p.node_ckpt(node);
    ++result.paths_checked;
    if (!on_zigzag_cycle(closure, c)) {
      ++result.paths_satisfied;
    } else if (result.ok) {
      result.ok = false;
      result.witness = RdtViolation{c, c, std::nullopt};
    }
  }
  return result;
}

}  // namespace rdt
