// The RDT characterization hierarchy — the paper's core contribution.
//
// A checkpoint-and-communication pattern satisfies RDT iff every R-path is
// on-line trackable (Definition 3.4). This module implements that
// *definitional* check plus a ladder of equivalent or neighbouring
// characterizations phrased on ever-smaller, more "visible" families of
// Z-paths, each usable as an independent test and each inducing a
// communication-induced checkpointing protocol:
//
//   { VCM <=> VPCM }  =>  { RDT_def <=> CM <=> PCM <=> MM }  =>  no Z-cycle
//
//  * RDT_def — every checkpoint pair connected by an R-path with a message
//    edge is on-line trackable (TDV form of Definition 3.4).
//  * CM  — every CM-path (causal chain + one message over a non-causal
//    junction) is doubled. Equivalent to RDT: splitting any Z-path at its
//    first non-causal junction and replacing the prefix by the doubling
//    chain strictly shrinks the suffix after the first junction, so
//    induction rebuilds a causal chain with the same endpoints.
//  * PCM — the same restricted to *prime* CM-paths, whose causal prefix is
//    simple (no checkpoint inside). Equivalent to CM: a non-simple prefix
//    crosses a checkpoint, and any doubling of the simple tail composes
//    causally with the prefix head because the crossed checkpoint separates
//    the head's last delivery from every send of the tail's doubling chain.
//    Prime paths are the *minimal* core: the family a protocol must watch.
//  * MM  — only two-message chains (elementary junction pairs) are required
//    doubled. This is Wang's elementary characterization, equivalent to RDT
//    again; tests/characterizations_test.cpp and experiment E7 validate the
//    equivalence over tens of thousands of randomized patterns.
//  * VCM / VPCM — CM/PCM with *visible* doubling: the doubling chain's last
//    send lies in the causal past of the junction's delivery event, i.e. a
//    protocol sitting at the junction could know the doubling. Strictly
//    stronger than RDT (doublings may exist yet be invisible — see the
//    rdt_but_not_visibly_doubled fixture); every pattern produced by the
//    RDT protocols in src/protocols satisfies VCM, which is the precise
//    sense in which the characterization is "visible". Restricting
//    visibility checks to prime paths (VPCM) loses nothing.
//  * no Z-cycle — necessary for RDT (a cycle can never be doubled), not
//    sufficient (Figure 1 is cycle-free yet hides a dependency).
//
// Every checker returns a CheckResult carrying a human-readable witness of
// the first violation plus counting statistics used by the E7 experiment.
#pragma once

#include <mutex>
#include <optional>
#include <string>

#include "core/chains.hpp"
#include "core/tdv.hpp"
#include "rgraph/reachability.hpp"

namespace rdt {

struct RdtViolation {
  CkptId from;  // endpoints of the untracked / undoubled dependency
  CkptId to;
  std::optional<NonCausalJunction> junction;  // for junction-based checkers
  std::string describe() const;
};

struct CheckResult {
  bool ok = true;
  std::optional<RdtViolation> witness;  // first violation found, if any
  long long paths_checked = 0;          // family-specific unit (pairs/junction-starts)
  long long paths_satisfied = 0;

  explicit operator bool() const { return ok; }
};

// Bundles the analyses the checkers share so callers build them once.
//
// Thread-safety contract: one RdtAnalyses may be shared freely across
// threads. The chain analysis and the R-graph closure are built lazily on
// first use under std::call_once; everything reachable through the accessors
// is immutable afterwards. (The once_flags pin the object: non-copyable.)
class RdtAnalyses {
 public:
  explicit RdtAnalyses(const Pattern& pattern)
      : pattern_(&pattern), tdv_(pattern) {}
  // The analyses keep a reference to the pattern; a temporary would dangle.
  explicit RdtAnalyses(Pattern&&) = delete;
  RdtAnalyses(const RdtAnalyses&) = delete;
  RdtAnalyses& operator=(const RdtAnalyses&) = delete;

  const Pattern& pattern() const { return *pattern_; }
  const TdvAnalysis& tdv() const { return tdv_; }
  const ChainAnalysis& chains() const;
  const ReachabilityClosure& closure() const;

 private:
  const Pattern* pattern_;
  TdvAnalysis tdv_;
  mutable std::optional<ChainAnalysis> chains_;
  mutable std::once_flag chains_once_;
  mutable std::optional<RGraph> rgraph_;
  mutable std::optional<ReachabilityClosure> closure_;
  mutable std::once_flag closure_once_;
};

// Definitional RDT: R-graph reachability through >= 1 message edge implies
// on-line trackability, over all checkpoint pairs.
CheckResult check_rdt_definitional(const RdtAnalyses& a);

// All CM-paths doubled (equivalent to RDT).
CheckResult check_cm_doubled(const RdtAnalyses& a);

// All prime CM-paths doubled (equivalent to RDT; smaller family).
CheckResult check_pcm_doubled(const RdtAnalyses& a);

// All MM-paths doubled (necessary for RDT, not sufficient).
CheckResult check_mm_doubled(const RdtAnalyses& a);

// All CM-paths (resp. prime CM-paths) *visibly* doubled — the protocol-
// enforceable strengthening of RDT.
CheckResult check_cm_visibly_doubled(const RdtAnalyses& a);
CheckResult check_pcm_visibly_doubled(const RdtAnalyses& a);

// No checkpoint lies on a Z-cycle (necessary for RDT).
CheckResult check_no_z_cycle(const RdtAnalyses& a);

// All five junction-based characterizations evaluated in ONE pass over the
// non-causal junctions, sharing the per-junction start sets and the visible-
// doubling scan between the families. Each member is identical to the
// corresponding individual checker's result.
struct JunctionReport {
  CheckResult cm;
  CheckResult pcm;
  CheckResult mm;
  CheckResult vcm;
  CheckResult vpcm;
};
JunctionReport check_junction_families(const RdtAnalyses& a);

}  // namespace rdt
