#include "core/global_checkpoint.hpp"

#include <algorithm>
#include <vector>

#include "util/check.hpp"

namespace rdt {

namespace {

// Pin bookkeeping shared by the containing variants.
std::vector<bool> pin_mask(const Pattern& p, std::span<const CkptId> pins) {
  std::vector<bool> pinned(static_cast<std::size_t>(p.num_processes()), false);
  for (const CkptId& c : pins) {
    RDT_REQUIRE(c.process >= 0 && c.process < p.num_processes(),
                "pinned process out of range");
    RDT_REQUIRE(c.index >= 0 && c.index <= p.last_ckpt(c.process),
                "pinned checkpoint index out of range");
    RDT_REQUIRE(!pinned[static_cast<std::size_t>(c.process)],
                "at most one pinned checkpoint per process");
    pinned[static_cast<std::size_t>(c.process)] = true;
  }
  return pinned;
}

// Raise-sender fixpoint. Returns false iff repairing an orphan would move a
// pinned component.
bool min_fixpoint(const Pattern& p, GlobalCkpt& g, const std::vector<bool>& pinned) {
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Message& m : p.messages()) {
      auto& x = g.indices[static_cast<std::size_t>(m.sender)];
      const auto y = g.indices[static_cast<std::size_t>(m.receiver)];
      if (m.send_interval > x && m.deliver_interval <= y) {
        if (pinned[static_cast<std::size_t>(m.sender)]) return false;
        x = m.send_interval;
        changed = true;
      }
    }
  }
  return true;
}

// Lower-receiver fixpoint, dual of the above.
bool max_fixpoint(const Pattern& p, GlobalCkpt& g, const std::vector<bool>& pinned) {
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Message& m : p.messages()) {
      const auto x = g.indices[static_cast<std::size_t>(m.sender)];
      auto& y = g.indices[static_cast<std::size_t>(m.receiver)];
      if (m.send_interval > x && m.deliver_interval <= y) {
        if (pinned[static_cast<std::size_t>(m.receiver)]) return false;
        y = m.deliver_interval - 1;
        changed = true;
      }
    }
  }
  return true;
}

}  // namespace

GlobalCkpt bottom_global_ckpt(const Pattern& p) {
  GlobalCkpt g;
  g.indices.assign(static_cast<std::size_t>(p.num_processes()), 0);
  return g;
}

GlobalCkpt top_global_ckpt(const Pattern& p) {
  GlobalCkpt g;
  g.indices.resize(static_cast<std::size_t>(p.num_processes()));
  for (ProcessId i = 0; i < p.num_processes(); ++i)
    g.indices[static_cast<std::size_t>(i)] = p.last_ckpt(i);
  return g;
}

GlobalCkpt min_consistent_geq(const Pattern& p, const GlobalCkpt& lower) {
  validate(p, lower);
  GlobalCkpt g = lower;
  const std::vector<bool> none(static_cast<std::size_t>(p.num_processes()), false);
  const bool ok = min_fixpoint(p, g, none);
  RDT_ASSERT(ok);  // the top is consistent, so the fixpoint cannot fail
  return g;
}

GlobalCkpt max_consistent_leq(const Pattern& p, const GlobalCkpt& upper) {
  validate(p, upper);
  GlobalCkpt g = upper;
  const std::vector<bool> none(static_cast<std::size_t>(p.num_processes()), false);
  const bool ok = max_fixpoint(p, g, none);
  RDT_ASSERT(ok);  // the bottom is consistent
  return g;
}

std::optional<GlobalCkpt> min_consistent_containing(const Pattern& p,
                                                    std::span<const CkptId> pins) {
  const std::vector<bool> pinned = pin_mask(p, pins);
  GlobalCkpt g = bottom_global_ckpt(p);
  for (const CkptId& c : pins)
    g.indices[static_cast<std::size_t>(c.process)] = c.index;
  if (!min_fixpoint(p, g, pinned)) return std::nullopt;
  return g;
}

std::optional<GlobalCkpt> max_consistent_containing(const Pattern& p,
                                                    std::span<const CkptId> pins) {
  const std::vector<bool> pinned = pin_mask(p, pins);
  GlobalCkpt g = top_global_ckpt(p);
  for (const CkptId& c : pins)
    g.indices[static_cast<std::size_t>(c.process)] = c.index;
  if (!max_fixpoint(p, g, pinned)) return std::nullopt;
  return g;
}

std::optional<GlobalCkpt> brute_force_min_consistent_containing(
    const Pattern& p, std::span<const CkptId> pins) {
  const std::vector<bool> pinned = pin_mask(p, pins);

  long long combos = 1;
  for (ProcessId i = 0; i < p.num_processes(); ++i) {
    if (!pinned[static_cast<std::size_t>(i)]) combos *= p.last_ckpt(i) + 1;
    RDT_REQUIRE(combos <= 4'000'000, "pattern too large for brute force");
  }

  GlobalCkpt g = bottom_global_ckpt(p);
  for (const CkptId& c : pins)
    g.indices[static_cast<std::size_t>(c.process)] = c.index;

  // Fold all consistent candidates with componentwise_min (consistent
  // global checkpoints form a lattice, so the fold itself stays consistent
  // and yields the unique minimum; lattice_test.cpp validates the closure
  // property independently).
  std::optional<GlobalCkpt> best;
  while (true) {
    if (consistent(p, g)) best = best ? componentwise_min(*best, g) : g;
    ProcessId i = 0;
    for (; i < p.num_processes(); ++i) {
      const auto idx = static_cast<std::size_t>(i);
      if (pinned[idx]) continue;
      if (g.indices[idx] < p.last_ckpt(i)) {
        ++g.indices[idx];
        break;
      }
      g.indices[idx] = 0;
    }
    if (i == p.num_processes()) break;
  }
  return best;
}

}  // namespace rdt
