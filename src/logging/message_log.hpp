// Sender-based message logging and piecewise-deterministic replay.
//
// The paper notes (Section 1) that RDT "combined with an appropriate
// message logging protocol allows to solve some dependability problems
// posed by nondeterministic computations as if these computations were
// piecewise deterministic". This module supplies that companion layer for
// the simulated world:
//
//  * every sender keeps, in volatile memory, the content of the messages it
//    sent together with their receive determinants (receiver + receive
//    sequence number) — the classic sender-based logging scheme;
//  * after a crash, the failed process restarts from its last durable
//    checkpoint and *replays*: it re-requests its post-checkpoint
//    deliveries from the senders' logs and consumes them in the logged
//    order, deterministically reconstructing its pre-crash state;
//  * a determinant is lost only when its sender crashed too (volatile
//    logs die with their process), so single failures replay completely —
//    no orphan ever forms and nobody else rolls back — while overlapping
//    failures replay up to the first lost determinant and fall back to
//    recovery-line rollback from there.
//
// Everything here is an offline analysis over a finished Pattern: the
// "log" is reconstructed from the pattern itself, which is exactly what a
// pessimistic sender-based logger would have recorded.
#pragma once

#include <span>
#include <vector>

#include "ccp/pattern.hpp"
#include "recovery/recovery_line.hpp"

namespace rdt {

struct ReplayPlan {
  ProcessId process = -1;
  CkptIndex from_ckpt = 0;        // durable restart point
  // Messages to re-consume from the senders' logs, in original delivery
  // order; cut at the first lost determinant.
  std::vector<MsgId> replayable;
  // Deliveries whose determinant died with a co-failed sender.
  std::vector<MsgId> lost;
  // Local event position reached after consuming `replayable` (one past the
  // last re-executed event); equals the pre-crash end iff complete().
  EventIndex resume_pos = 0;
  // Index of the last checkpoint re-established by the replay (>= from_ckpt:
  // checkpoints are re-taken deterministically during replay).
  CkptIndex last_restored_ckpt = 0;

  bool complete() const { return lost.empty(); }
  // Events re-executed beyond the restart checkpoint.
  int replayed_events(const Pattern& p) const;
};

// Replay plan for `process` restarting from C_{process,from}, given the set
// of simultaneously failed processes (their sender logs are gone).
// `process` itself is implicitly failed.
ReplayPlan plan_replay(const Pattern& p, ProcessId process, CkptIndex from,
                       std::span<const ProcessId> failed);

// Full recovery with sender-based logging for a set of simultaneous
// failures: each failed process restarts from its last durable checkpoint
// and replays as far as its determinants allow; survivors keep their
// volatile state. Work beyond a lost determinant is truly lost and may
// orphan messages, in which case the outcome includes the induced
// rollback of other processes (computed on the R-graph).
struct LoggedRecoveryOutcome {
  std::vector<ReplayPlan> plans;  // one per failed process
  RecoveryOutcome rollback;       // residual rollback after replay
  // Total events re-executed from logs (work redone, not lost).
  int total_replayed = 0;
};

LoggedRecoveryOutcome recover_with_logging(const Pattern& p,
                                           std::span<const ProcessId> failed);

}  // namespace rdt
