#include "logging/message_log.hpp"

#include <algorithm>

#include "core/global_checkpoint.hpp"
#include "util/check.hpp"

namespace rdt {

int ReplayPlan::replayed_events(const Pattern& p) const {
  const EventIndex start = p.ckpt_pos(process, from_ckpt) + 1;
  return resume_pos - start;
}

ReplayPlan plan_replay(const Pattern& p, ProcessId process, CkptIndex from,
                       std::span<const ProcessId> failed) {
  RDT_REQUIRE(process >= 0 && process < p.num_processes(),
              "process out of range");
  RDT_REQUIRE(from >= 0 && from <= p.last_ckpt(process),
              "checkpoint index out of range");

  std::vector<bool> sender_lost(static_cast<std::size_t>(p.num_processes()),
                                false);
  for (ProcessId f : failed) {
    RDT_REQUIRE(f >= 0 && f < p.num_processes(), "failed process out of range");
    sender_lost[static_cast<std::size_t>(f)] = true;
  }

  ReplayPlan plan;
  plan.process = process;
  plan.from_ckpt = from;
  plan.last_restored_ckpt = from;

  const EventIndex start = p.ckpt_pos(process, from) + 1;
  bool stopped = false;
  plan.resume_pos = p.num_events(process);
  for (EventIndex pos = start; pos < p.num_events(process); ++pos) {
    const Event& ev = p.event(process, pos);
    switch (ev.kind) {
      case EventKind::kDeliver: {
        const Message& m = p.message(ev.msg);
        if (stopped) {
          // Past the first loss the replay is already non-deterministic;
          // later determinants, even if available, cannot be used safely.
          plan.lost.push_back(ev.msg);
        } else if (sender_lost[static_cast<std::size_t>(m.sender)]) {
          // The determinant and content lived in the sender's volatile log.
          plan.lost.push_back(ev.msg);
          plan.resume_pos = pos;  // events before pos are re-established
          stopped = true;
        } else {
          plan.replayable.push_back(ev.msg);
        }
        break;
      }
      case EventKind::kCheckpoint:
        if (!stopped && !p.ckpt_is_virtual(process, ev.ckpt))
          plan.last_restored_ckpt = ev.ckpt;
        break;
      case EventKind::kSend:
      case EventKind::kInternal:
        break;  // deterministic re-execution
    }
  }
  return plan;
}

LoggedRecoveryOutcome recover_with_logging(const Pattern& p,
                                           std::span<const ProcessId> failed) {
  RDT_REQUIRE(!failed.empty(), "need at least one failed process");
  const GlobalCkpt durable = last_durable(p);

  LoggedRecoveryOutcome out;
  // Effective restart ceiling per process: survivors keep everything
  // (including the open interval); a completely-replayed process is as good
  // as a survivor; a partially-replayed one is conservatively cut at its
  // last re-established checkpoint.
  GlobalCkpt upper = top_global_ckpt(p);
  for (ProcessId f : failed) {
    ReplayPlan plan =
        plan_replay(p, f, durable.indices[static_cast<std::size_t>(f)], failed);
    upper.indices[static_cast<std::size_t>(f)] =
        plan.complete() ? p.last_ckpt(f) : plan.last_restored_ckpt;
    out.total_replayed += plan.replayed_events(p);
    out.plans.push_back(std::move(plan));
  }

  const GlobalCkpt line = max_consistent_leq(p, upper);
  out.rollback.line = line;
  out.rollback.rollback_intervals.resize(
      static_cast<std::size_t>(p.num_processes()));
  for (ProcessId i = 0; i < p.num_processes(); ++i) {
    const auto idx = static_cast<std::size_t>(i);
    const CkptIndex lost =
        std::max<CkptIndex>(0, durable.indices[idx] - line.indices[idx]);
    out.rollback.rollback_intervals[idx] = lost;
    out.rollback.total_rollback += lost;
    if (durable.indices[idx] > 0)
      out.rollback.worst_fraction =
          std::max(out.rollback.worst_fraction,
                   static_cast<double>(lost) /
                       static_cast<double>(durable.indices[idx]));
  }
  return out;
}

}  // namespace rdt
