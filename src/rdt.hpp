// librdt — rollback-dependency trackability, in one include.
//
// The single public entry point: everything an application, experiment or
// tool needs to build checkpoint-and-communication patterns, run and
// observe CIC protocols, and analyze the result. Layer by layer:
//
//   causality/   process/message/checkpoint identifiers, clocks
//   ccp/         checkpoint & communication patterns, consistency
//   rgraph/      rollback-dependency graphs, zigzag reachability
//   core/        the paper's characterizations: RDT checker, TDVs,
//                minimum consistent global checkpoints
//   protocols/   the CIC protocol family behind ProtocolRegistry — the
//                supported construction path (string id -> instance +
//                capability metadata + observer wiring)
//   sim/         trace generation, the replay engine, parallel sweeps
//   des/         the discrete-event runtime and example applications
//   recovery/    recovery lines, domino effect, garbage collection
//   online/      the incremental analysis kernel: OnlineEngine streams
//                events once and keeps RDT / recovery / z-reach answers
//                live at every prefix
//   serve/       the multi-tenant serving layer: a wire format for
//                StreamEvent frames and a session-sharded engine pool
//                that scales many concurrent streams across cores
//   logging/     message logging for deterministic replay
//   obs/         observability: metrics registry, span tracing, the
//                RDT_TRACE_SPAN / RDT_COUNT hooks (chrome://tracing export)
//
// Individual headers remain includable for finer-grained dependencies; new
// code should start from this one.
#pragma once

#include "causality/ids.hpp"
#include "causality/lamport.hpp"
#include "causality/vector_clock.hpp"
#include "ccp/builder.hpp"
#include "ccp/consistency.hpp"
#include "ccp/pattern.hpp"
#include "ccp/pattern_io.hpp"
#include "core/chains.hpp"
#include "core/characterizations.hpp"
#include "core/global_checkpoint.hpp"
#include "core/pattern_stats.hpp"
#include "core/rdt_checker.hpp"
#include "core/tdv.hpp"
#include "des/app.hpp"
#include "des/apps.hpp"
#include "des/simulator.hpp"
#include "des/snapshot.hpp"
#include "logging/message_log.hpp"
#include "obs/hooks.hpp"
#include "obs/metrics.hpp"
#include "obs/session.hpp"
#include "obs/trace_log.hpp"
#include "online/engine.hpp"
#include "protocols/observer.hpp"
#include "protocols/payload.hpp"
#include "protocols/protocol.hpp"
#include "protocols/registry.hpp"
#include "recovery/domino.hpp"
#include "recovery/gc.hpp"
#include "recovery/recovery_line.hpp"
#include "recovery/rollback.hpp"
#include "rgraph/incremental.hpp"
#include "rgraph/reachability.hpp"
#include "rgraph/rgraph.hpp"
#include "rgraph/rgraph_dot.hpp"
#include "rgraph/zigzag.hpp"
#include "serve/driver.hpp"
#include "serve/pool.hpp"
#include "serve/wire.hpp"
#include "sim/environments.hpp"
#include "sim/payload_arena.hpp"
#include "sim/replay.hpp"
#include "sim/runner.hpp"
#include "sim/trace.hpp"
#include "sim/trace_io.hpp"
